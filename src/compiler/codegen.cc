#include "compiler/codegen.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "compiler/schedule.hh"
#include "support/error.hh"

namespace voltron {

namespace {

/** Identity element of an accumulator operation. */
i64
identity_of(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::OR: case Opcode::XOR: return 0;
      case Opcode::MUL: return 1;
      case Opcode::AND: return -1;
      case Opcode::MIN: return std::numeric_limits<i64>::max();
      case Opcode::MAX: return std::numeric_limits<i64>::min();
      default: panic("not an accumulator op");
    }
}

bool
is_accumulator_op(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::MUL: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::MIN:
      case Opcode::MAX:
        return true;
      default:
        return false;
    }
}

} // namespace

DoallPlan
analyze_doall(const Function &fn, const CompilerRegion &region,
              const FuncAnalyses &fa, const Liveness &live)
{
    DoallPlan plan;
    if (region.kind != RegionKind::Loop || region.loopIdx < 0) {
        plan.reason = "not a loop region";
        return plan;
    }
    const Loop &loop = fa.loops->loops()[region.loopIdx];
    if (!loop.counted.valid()) {
        plan.reason = "loop is not counted";
        return plan;
    }
    if (loop.counted.step <= 0) {
        plan.reason = "non-positive step";
        return plan;
    }
    if (loop.exitTargets.size() != 1) {
        plan.reason = "multiple exit targets";
        return plan;
    }
    plan.counted = loop.counted;
    const RegId ivar = loop.counted.ivar;

    // Classify loop-carried registers: live into the header and defined
    // inside the loop. Each must be the induction variable or a pure
    // integer accumulator (single def `r = r OP x`, OP associative and
    // commutative, r unused elsewhere in the loop).
    const std::set<RegId> &header_live = live.liveIn(loop.header);
    std::set<RegId> defined;
    for (BlockId b : loop.blocks)
        for (const Operation &op : fn.block(b).ops)
            if (op.def().valid())
                defined.insert(op.def());

    for (RegId r : header_live) {
        if (!defined.count(r) || r == ivar)
            continue;
        // Find all defs/uses of r inside the loop.
        const Operation *def_op = nullptr;
        u32 def_count = 0, other_uses = 0;
        for (BlockId b : loop.blocks) {
            for (const Operation &op : fn.block(b).ops) {
                if (op.def() == r) {
                    def_count++;
                    def_op = &op;
                }
                for (RegId use : op.uses()) {
                    if (use == r && op.def() != r)
                        other_uses++;
                }
            }
        }
        const bool shape_ok =
            def_count == 1 && other_uses == 0 && def_op &&
            is_accumulator_op(def_op->op) && r.cls == RegClass::GPR &&
            (def_op->src0 == r ||
             (!def_op->immSrc1 && def_op->src1 == r));
        if (!shape_ok) {
            plan.reason = "unresolvable loop-carried register";
            return plan;
        }
        // `r OP x` with x also equal to r (r = r OP r) is not expandable.
        if (def_op->src0 == r && !def_op->immSrc1 && def_op->src1 == r) {
            plan.reason = "self-squaring recurrence";
            return plan;
        }
        plan.accumulators.push_back(
            {r, def_op->op, identity_of(def_op->op)});
    }

    // Live-outs must be covered: not defined in the loop (pass-through),
    // the induction variable, or an accumulator.
    std::set<RegId> live_out;
    for (const auto &[from, to] : region.exitEdges) {
        (void)from;
        const auto &in = live.liveIn(to);
        live_out.insert(in.begin(), in.end());
    }
    for (RegId r : live_out) {
        if (!defined.count(r) || r == ivar)
            continue;
        bool is_acc = false;
        for (const auto &acc : plan.accumulators)
            if (acc.reg == r)
                is_acc = true;
        if (!is_acc) {
            plan.reason = "loop-defined live-out is not an accumulator";
            return plan;
        }
    }

    // Live-ins the chunk bodies need (everything used in the loop that is
    // live into the header, minus the chunk-managed registers).
    std::set<RegId> used;
    for (BlockId b : loop.blocks)
        for (const Operation &op : fn.block(b).ops)
            for (RegId use : op.uses())
                used.insert(use);
    for (RegId r : used) {
        if (r.cls == RegClass::BTR || r == ivar)
            continue;
        bool is_acc = false;
        for (const auto &acc : plan.accumulators)
            if (acc.reg == r)
                is_acc = true;
        if (is_acc || !header_live.count(r))
            continue;
        if (loop.counted.boundReg.valid() && r == loop.counted.boundReg)
            continue; // workers get the chunk bound instead
        plan.bodyLiveIns.push_back(r);
    }
    std::sort(plan.bodyLiveIns.begin(), plan.bodyLiveIns.end());

    plan.feasible = true;
    return plan;
}

// ===========================================================================

namespace {

/** The generator. */
class Codegen
{
  public:
    explicit Codegen(const CodegenInput &in) : in_(in) {}

    MachineProgram
    run()
    {
        const Program &prog = *in_.prog;
        out_.name = prog.name;
        out_.numCores = in_.numCores;
        out_.original = prog;
        out_.perCore.resize(in_.numCores);
        for (u16 c = 0; c < in_.numCores; ++c) {
            out_.perCore[c].name = prog.name + ".core" +
                                   std::to_string(c);
        }

        // Region metadata table (ids are already global and dense).
        size_t num_regions = 0;
        for (const auto &regions : in_.regionsOf)
            num_regions += regions.size();
        out_.regions.resize(num_regions);
        for (const auto &regions : in_.regionsOf) {
            for (const CompilerRegion &region : regions) {
                RegionMeta meta;
                meta.id = region.id;
                meta.func = region.func;
                meta.entry = region.entry;
                meta.kind = region.kind;
                meta.mode = region.mode;
                for (BlockId b : region.blocks) {
                    meta.profiledOps +=
                        in_.profile->blockExecs(region.func, b) *
                        fnOf(region.func).block(b).ops.size();
                }
                out_.regions.at(region.id) = meta;
            }
        }

        for (FuncId f = 0; f < prog.functions.size(); ++f)
            genFunction(f);

        // Only coupled-mode hop chains are routed against the mesh;
        // programs without them run on any shape with the right core
        // count, so they stay shape-agnostic (rows/cols = 0) and the
        // simulator's geometry check does not bind them.
        if (routedGeometry_) {
            out_.meshRows = meshRows();
            out_.meshCols = meshCols();
        }

        return std::move(out_);
    }

  private:
    const CodegenInput &in_;
    MachineProgram out_;

    // Per-function state.
    const Function *fn_ = nullptr;
    const FuncAnalyses *fa_ = nullptr;
    std::unique_ptr<Liveness> live_;
    u32 nextTransferId_ = kTransferIdBase;
    /** Whether any emitted transfer was routed against the mesh. */
    bool routedGeometry_ = false;
    /** Master preamble per non-serial region (for the entry rewire). */
    std::map<RegionId, BlockId> masterPreamble_;

    const Function &fnOf(FuncId f) const { return in_.prog->function(f); }

    Function &clone(CoreId c) { return out_.perCore[c].functions.back(); }

    /** Geometry is a codegen input: clamped to numCores for callers
     * that build a CodegenInput by hand and never set a shape. */
    MeshShape
    meshShape() const
    {
        return in_.mesh.cores() == in_.numCores
                   ? in_.mesh
                   : default_mesh_shape(in_.numCores);
    }

    u16 meshCols() const { return meshShape().cols; }
    u16 meshRows() const { return meshShape().rows; }

    /** XY route: column moves then row moves. */
    std::vector<Dir>
    route(CoreId from, CoreId to) const
    {
        std::vector<Dir> dirs;
        const u16 cols = meshCols();
        int fc = from % cols, fr = from / cols;
        const int tc = to % cols, tr = to / cols;
        while (fc < tc) { dirs.push_back(Dir::East); fc++; }
        while (fc > tc) { dirs.push_back(Dir::West); fc--; }
        while (fr < tr) { dirs.push_back(Dir::South); fr++; }
        while (fr > tr) { dirs.push_back(Dir::North); fr--; }
        return dirs;
    }

    CoreId
    stepCore(CoreId from, Dir dir) const
    {
        const u16 cols = meshCols();
        switch (dir) {
          case Dir::East: return from + 1;
          case Dir::West: return from - 1;
          case Dir::South: return static_cast<CoreId>(from + cols);
          case Dir::North: return static_cast<CoreId>(from - cols);
          default: panic("bad dir");
        }
    }

    /** XY (Manhattan) hop count between two cores on the resolved mesh. */
    u16
    hopDistance(CoreId a, CoreId b) const
    {
        const u16 cols = meshCols();
        const int ac = a % cols, ar = a / cols;
        const int bc = b % cols, br = b / cols;
        return static_cast<u16>(std::abs(ac - bc) + std::abs(ar - br));
    }

    /** Master-side serial cost of adding one DOALL worker (spawn +
     * parameterise SENDs + join/partial RECVs + TM bookkeeping), in
     * body-op-equivalents. Fitted against the suite's chunk loops:
     * large enough that a 512-trip loop stops widening near 8 cores
     * (where measured speedup peaks), small enough that 4096-trip
     * loops use 16+ cores. */
    static constexpr double kDoallPerWorkerOverheadOps = 80.0;

    /** Trip estimate when the profile never saw the loop execute. */
    static constexpr double kDoallDefaultTrip = 64.0;

    /**
     * How many cores (master included) a DOALL chunking should use.
     *
     * Workers are not free: the master serially spawns, parameterises,
     * and joins each one — a per-worker cost that is flat in machine
     * size — while each extra worker saves only ~(trip * bodyOps) /
     * width^2 cycles of chunk work. Balancing the two gives width ~
     * sqrt(trip * bodyOps / overhead), clamped to the resolved mesh.
     * The old behaviour split numCores ways unconditionally, which
     * made 16–64-core meshes *slower* than 4-core ones at suite trip
     * counts (the per-worker preamble dominated the shrinking chunks).
     */
    u16
    doallWidth(const CompilerRegion &region) const
    {
        if (in_.numCores <= 2)
            return in_.numCores;
        const Loop &loop = fa_->loops->loops()[region.loopIdx];
        double trip = in_.profile->avgTripCount(fn_->id, loop.header);
        if (trip <= 0.0)
            trip = kDoallDefaultTrip;
        u64 body_ops = 0;
        for (BlockId b : region.blocks)
            body_ops += fn_->block(b).ops.size();
        const double work = trip * static_cast<double>(body_ops);
        const double ideal =
            std::sqrt(work / kDoallPerWorkerOverheadOps);
        return static_cast<u16>(std::clamp(
            ideal, 2.0, static_cast<double>(in_.numCores)));
    }

    /** Worker cores for a DOALL of @p width cores total (the master,
     * core 0, is not in the list): nearest cores on the resolved mesh
     * first, so a narrow chunking on a wide machine pays minimal
     * SEND/RECV hop latency; ties break toward low core ids so the
     * selection is deterministic across shapes with equal distances. */
    std::vector<CoreId>
    doallWorkerCores(u16 width) const
    {
        std::vector<CoreId> workers;
        for (CoreId c = 1; c < in_.numCores; ++c)
            workers.push_back(c);
        std::stable_sort(workers.begin(), workers.end(),
                         [&](CoreId a, CoreId b) {
                             return hopDistance(0, a) < hopDistance(0, b);
                         });
        workers.resize(width > 0 ? width - 1 : 0);
        return workers;
    }

    void
    genFunction(FuncId f)
    {
        fn_ = &fnOf(f);
        fa_ = (*in_.analyses)[f].get();
        live_ = std::make_unique<Liveness>(*in_.prog, *fn_, *fa_->cfg);
        nextTransferId_ = kTransferIdBase;
        masterPreamble_.clear();

        // Mirrored skeletons.
        for (u16 c = 0; c < in_.numCores; ++c) {
            Function &cf = out_.perCore[c].addFunction(
                fn_->name, fn_->numArgs, fn_->returnsValue);
            cf.nextGpr = fn_->nextGpr;
            cf.nextFpr = fn_->nextFpr;
            cf.nextPr = fn_->nextPr;
            cf.nextBtr = fn_->nextBtr;
            for (const BasicBlock &bb : fn_->blocks) {
                BlockId nb = cf.addBlock(bb.name);
                cf.block(nb).fallthrough = bb.fallthrough;
            }
        }

        // Stamp mirrored blocks with region ids on every clone.
        for (const CompilerRegion &region : in_.regionsOf[f]) {
            for (BlockId b : region.blocks)
                for (u16 c = 0; c < in_.numCores; ++c)
                    clone(c).block(b).region = region.id;
        }

        // Emit region bodies.
        for (const CompilerRegion &region : in_.regionsOf[f]) {
            switch (region.mode) {
              case ExecMode::Serial:
                genSerial(region);
                break;
              case ExecMode::Coupled:
                genPartitioned(region,
                               in_.assignments.at(region.id), true);
                break;
              case ExecMode::Strands:
              case ExecMode::Dswp:
                genPartitioned(region,
                               in_.assignments.at(region.id), false);
                break;
              case ExecMode::Doall:
                genDoall(region);
                break;
            }
        }

        // Entry rewiring on the master clone: edges from outside a
        // non-serial region into its entry go to the region preamble.
        Function &master = clone(0);
        for (const auto &[region_id, preamble] : masterPreamble_) {
            const CompilerRegion *region = nullptr;
            for (const CompilerRegion &r : in_.regionsOf[f])
                if (r.id == region_id)
                    region = &r;
            panic_if_not(region != nullptr, "missing region");
            for (BasicBlock &bb : master.blocks) {
                if (bb.region == region_id)
                    continue;
                for (Operation &op : bb.ops) {
                    if (op.op != Opcode::PBR)
                        continue;
                    CodeRef ref = op.codeRef();
                    if (ref.kind == CodeRef::Kind::Block &&
                        ref.func == f && ref.block == region->entry) {
                        op.imm = static_cast<i64>(
                            CodeRef::to_block(f, preamble).encode());
                    }
                }
                if (bb.fallthrough == region->entry)
                    bb.fallthrough = preamble;
            }
        }
    }

    void
    genSerial(const CompilerRegion &region)
    {
        Function &master = clone(0);
        for (BlockId b : region.blocks)
            master.block(b).ops = fn_->block(b).ops;
    }

    // --- Partitioned regions (Coupled / Strands / Dswp) -------------------

    std::set<RegId>
    regionLiveOut(const CompilerRegion &region) const
    {
        std::set<RegId> out;
        for (const auto &[from, to] : region.exitEdges) {
            (void)from;
            const auto &in = live_->liveIn(to);
            out.insert(in.begin(), in.end());
        }
        return out;
    }

    /**
     * The paper's Figure 5(c) optimisation, generalised: the backward
     * slice of every branch predicate is *replicated* on all participants
     * when it consists of cheap integer ops whose inputs are region
     * live-ins or other replicated defs. This removes the per-iteration
     * predicate broadcast/sends and replicates induction updates, which
     * is what makes both coupled and decoupled loops profitable.
     */
    std::set<OpRef>
    computeReplicatedSlice(const CompilerRegion &region) const
    {
        auto cheap = [](const Operation &op) {
            switch (op.op) {
              case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
              case Opcode::AND: case Opcode::OR: case Opcode::XOR:
              case Opcode::SHL: case Opcode::SHR: case Opcode::SRA:
              case Opcode::MIN: case Opcode::MAX: case Opcode::MOV:
              case Opcode::MOVI: case Opcode::CMP:
                return true;
              default:
                return false;
            }
        };

        std::map<RegId, std::vector<OpRef>> defs;
        for (BlockId b : region.blocks) {
            const BasicBlock &bb = fn_->block(b);
            for (u32 i = 0; i < bb.ops.size(); ++i)
                if (bb.ops[i].def().valid())
                    defs[bb.ops[i].def()].push_back({b, i});
        }

        // Greatest fixpoint: start from all cheap ops and erode any op
        // reading a register with a non-replicable region def. Recurrences
        // (i = i + 1; the compare on i) survive as long as every def in
        // the cycle is cheap — exactly the induction/predicate chains the
        // paper replicates.
        std::set<OpRef> replicable;
        for (BlockId b : region.blocks) {
            const BasicBlock &bb = fn_->block(b);
            for (u32 i = 0; i < bb.ops.size(); ++i)
                if (cheap(bb.ops[i]))
                    replicable.insert({b, i});
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (auto it = replicable.begin(); it != replicable.end();) {
                const Operation &op = fn_->block(it->block).ops[it->idx];
                bool ok = true;
                for (RegId use : op.uses()) {
                    auto dit = defs.find(use);
                    if (dit == defs.end())
                        continue; // pure live-in
                    for (const OpRef &d : dit->second)
                        if (!replicable.count(d))
                            ok = false;
                }
                if (!ok) {
                    it = replicable.erase(it);
                    changed = true;
                } else {
                    ++it;
                }
            }
        }

        // Backward slice from branch predicates and memory-op addresses
        // through replicable defs. Replicating the address chains is what
        // lets each core drive its own load stream locally (the per-core
        // pointer increments of the paper's Figure 8 partition).
        std::set<RegId> want;
        for (BlockId b : region.blocks) {
            for (const Operation &op : fn_->block(b).ops) {
                if (op.op == Opcode::BR)
                    want.insert(op.src0);
                if (is_memory(op.op))
                    want.insert(op.src0); // address base
            }
        }
        std::set<OpRef> slice;
        bool grew = true;
        while (grew) {
            grew = false;
            for (RegId reg : std::set<RegId>(want)) {
                auto it = defs.find(reg);
                if (it == defs.end())
                    continue;
                for (const OpRef &d : it->second) {
                    if (!replicable.count(d) || !slice.insert(d).second)
                        continue;
                    grew = true;
                    const Operation &op =
                        fn_->block(d.block).ops[d.idx];
                    for (RegId use : op.uses())
                        want.insert(use);
                }
            }
        }
        return slice;
    }

    /**
     * Locally reorder a decoupled block for an in-order core: SENDs
     * issue as soon as their value is ready (release consumers early),
     * memory ops hoist above unrelated code (start misses early, so
     * independent miss streams on different cores overlap — the MLP the
     * paper's strands exist for), and RECVs sink as late as their first
     * consumer allows.
     *
     * The reorder is a greedy topological schedule that preserves:
     * register flow/anti/output dependences; program order of aliasing
     * memory ops; per-pair FIFO order (SEND chains per receiver, RECV
     * chains per sender); and the position of sequence points (control,
     * SLEEP, MODE_SWITCH, SPAWN, transactions), which split the block
     * into independently-reordered segments.
     */
    static void
    reorderDecoupledBlock(std::vector<Operation> &block_ops)
    {
        auto is_sequence_point = [](const Operation &op) {
            switch (op.op) {
              case Opcode::BR: case Opcode::BRU: case Opcode::CALL:
              case Opcode::RET: case Opcode::HALT: case Opcode::SLEEP:
              case Opcode::MODE_SWITCH: case Opcode::SPAWN:
              case Opcode::XBEGIN: case Opcode::XCOMMIT:
              case Opcode::XABORT: case Opcode::XVALIDATE:
                return true;
              default:
                return false;
            }
        };

        std::vector<Operation> result;
        result.reserve(block_ops.size());

        auto reorder_segment = [&](size_t begin, size_t end) {
            const size_t n = end - begin;
            if (n <= 1) {
                for (size_t i = begin; i < end; ++i)
                    result.push_back(block_ops[i]);
                return;
            }
            // Dependence edges within the segment.
            std::vector<std::vector<u32>> preds(n);
            std::map<RegId, u32> last_def;
            std::map<RegId, std::vector<u32>> uses_since;
            std::map<CoreId, u32> last_send, last_recv;
            u32 last_mem_store = ~0u;
            std::map<u32, u32> last_store_of_class;
            std::vector<u32> loads_since_store;

            for (u32 i = 0; i < n; ++i) {
                const Operation &op = block_ops[begin + i];
                for (RegId use : op.uses()) {
                    auto it = last_def.find(use);
                    if (it != last_def.end())
                        preds[i].push_back(it->second);
                    uses_since[use].push_back(i);
                }
                RegId def = op.def();
                if (def.valid()) {
                    auto it = last_def.find(def);
                    if (it != last_def.end())
                        preds[i].push_back(it->second); // WAW
                    for (u32 u : uses_since[def])
                        if (u != i)
                            preds[i].push_back(u); // WAR
                    uses_since[def].clear();
                    last_def[def] = i;
                }
                if (op.op == Opcode::SEND) {
                    auto [it, fresh] = last_send.try_emplace(
                        static_cast<CoreId>(op.imm), i);
                    if (!fresh) {
                        preds[i].push_back(it->second);
                        it->second = i;
                    }
                }
                if (op.op == Opcode::RECV) {
                    auto [it, fresh] = last_recv.try_emplace(
                        static_cast<CoreId>(op.imm), i);
                    if (!fresh) {
                        preds[i].push_back(it->second);
                        it->second = i;
                    }
                }
                if (is_memory(op.op)) {
                    // Conservative: stores order against every memory op;
                    // loads order against stores (same or wildcard class
                    // handled conservatively: any store).
                    if (is_store(op.op)) {
                        if (last_mem_store != ~0u)
                            preds[i].push_back(last_mem_store);
                        for (u32 l : loads_since_store)
                            preds[i].push_back(l);
                        loads_since_store.clear();
                        last_mem_store = i;
                    } else {
                        if (last_mem_store != ~0u)
                            preds[i].push_back(last_mem_store);
                        loads_since_store.push_back(i);
                    }
                }
            }

            std::vector<u32> remaining(n, 0);
            std::vector<std::vector<u32>> succs(n);
            for (u32 i = 0; i < n; ++i) {
                for (u32 p : preds[i]) {
                    succs[p].push_back(i);
                    remaining[i]++;
                }
            }

            auto priority = [&](u32 i) {
                const Operation &op = block_ops[begin + i];
                if (op.op == Opcode::SEND)
                    return 0;
                if (is_memory(op.op))
                    return 1;
                if (op.op == Opcode::RECV)
                    return 3;
                return 2;
            };

            std::vector<bool> emitted(n, false);
            for (u32 count = 0; count < n; ++count) {
                u32 pick = ~0u;
                for (u32 i = 0; i < n; ++i) {
                    if (emitted[i] || remaining[i] != 0)
                        continue;
                    if (pick == ~0u || priority(i) < priority(pick))
                        pick = i;
                }
                panic_if_not(pick != ~0u, "decoupled reorder wedged");
                emitted[pick] = true;
                result.push_back(block_ops[begin + pick]);
                for (u32 s : succs[pick])
                    remaining[s]--;
            }
        };

        size_t seg_start = 0;
        for (size_t i = 0; i < block_ops.size(); ++i) {
            if (is_sequence_point(block_ops[i])) {
                reorder_segment(seg_start, i);
                result.push_back(block_ops[i]);
                seg_start = i + 1;
            }
        }
        reorder_segment(seg_start, block_ops.size());
        block_ops = std::move(result);
    }

    void
    genPartitioned(const CompilerRegion &region, const Assignment &assign,
                   bool coupled)
    {
        const FuncId f = fn_->id;
        const std::set<OpRef> replicated = computeReplicatedSlice(region);

        // Participants.
        std::set<CoreId> participants;
        participants.insert(0);
        if (coupled) {
            for (u16 c = 0; c < in_.numCores; ++c)
                participants.insert(c);
        } else {
            for (const auto &[ref, core] : assign)
                participants.insert(core);
        }
        std::vector<CoreId> workers(participants.begin(),
                                    participants.end());
        workers.erase(workers.begin()); // drop the master

        const std::set<RegId> live_out = regionLiveOut(region);

        // Assignment lookup with replication skipping.
        auto core_of = [&](const OpRef &ref) -> CoreId {
            auto it = assign.find(ref);
            return it == assign.end() ? 0 : it->second;
        };

        // Classify live-out registers. A register whose in-region defs
        // all sit on one worker core (and never on a replicated op) is
        // *exit-owned*: instead of shipping every def to the master, the
        // worker sends the final value once in its exit epilogue. The
        // master seeds the worker's copy in the preamble when the value
        // is live into the region, so the copy is correct along paths
        // that skip the defs (e.g. zero-trip loops).
        std::map<RegId, CoreId> exit_owned;
        std::set<RegId> liveout_fallback; // per-def master transfer
        {
            std::map<RegId, std::set<CoreId>> def_cores;
            std::set<RegId> replicated_def;
            for (BlockId b : region.blocks) {
                const BasicBlock &bb = fn_->block(b);
                for (u32 i = 0; i < bb.ops.size(); ++i) {
                    const RegId def = bb.ops[i].def();
                    if (!def.valid())
                        continue;
                    if (bb.ops[i].op == Opcode::PBR)
                        continue; // block-local BTRs never escape
                    if (replicated.count({b, i}))
                        replicated_def.insert(def);
                    else
                        def_cores[def].insert(core_of({b, i}));
                }
            }
            for (RegId r : live_out) {
                if (r.cls == RegClass::BTR)
                    continue;
                auto it = def_cores.find(r);
                const bool has_plain = it != def_cores.end();
                if (!has_plain)
                    continue; // live-through or replicated: master is current
                if (replicated_def.count(r) || it->second.size() > 1) {
                    liveout_fallback.insert(r);
                } else if (*it->second.begin() != 0) {
                    exit_owned[r] = *it->second.begin();
                }
                // defs only on the master: nothing to do.
            }
        }

        // Users per register (any position in the region). Branch
        // replicas and replicated-slice ops read on every participant.
        std::map<RegId, std::set<CoreId>> users;
        for (BlockId b : region.blocks) {
            const BasicBlock &bb = fn_->block(b);
            for (u32 i = 0; i < bb.ops.size(); ++i) {
                const Operation &op = bb.ops[i];
                if (op.op == Opcode::PBR)
                    continue;
                if (op.op == Opcode::BR || replicated.count({b, i})) {
                    const std::vector<RegId> op_uses =
                        op.op == Opcode::BR
                            ? std::vector<RegId>{op.src0}
                            : op.uses();
                    for (RegId use : op_uses)
                        for (CoreId c : participants)
                            users[use].insert(c);
                    continue;
                }
                if (op.op == Opcode::BRU)
                    continue;
                const CoreId c = core_of({b, i});
                for (RegId use : op.uses())
                    users[use].insert(c);
            }
        }
        for (RegId r : liveout_fallback)
            users[r].insert(0);

        // Decoupled alias-class discipline check.
        if (!coupled) {
            std::map<u32, CoreId> class_core;
            bool wildcard_seen = false;
            CoreId wildcard_core = 0;
            for (BlockId b : region.blocks) {
                const BasicBlock &bb = fn_->block(b);
                for (u32 i = 0; i < bb.ops.size(); ++i) {
                    if (!is_memory(bb.ops[i].op))
                        continue;
                    const CoreId c = core_of({b, i});
                    const u32 sym = bb.ops[i].memSym;
                    if (sym == 0) {
                        if (wildcard_seen && wildcard_core != c &&
                            !in_.allowCrossCoreMemDep) {
                            panic("decoupled partition split the wildcard "
                                  "alias class");
                        }
                        wildcard_seen = true;
                        wildcard_core = c;
                        continue;
                    }
                    auto [it, fresh] = class_core.try_emplace(sym, c);
                    if (!fresh && it->second != c &&
                        !in_.allowCrossCoreMemDep) {
                        // Loads-only classes may split freely.
                        bool has_store = false;
                        for (BlockId b2 : region.blocks)
                            for (const Operation &op2 : fn_->block(b2).ops)
                                if (is_store(op2.op) && op2.memSym == sym)
                                    has_store = true;
                        panic_if_not(!has_store,
                                     "decoupled partition split alias "
                                     "class ", sym);
                    }
                }
            }
        }

        // Per-core epilogue blocks, one per distinct exit target.
        std::set<BlockId> exit_targets;
        for (const auto &[from, to] : region.exitEdges)
            exit_targets.insert(to);
        // epilogue[(core, target)] -> block id in that core's clone
        std::map<std::pair<CoreId, BlockId>, BlockId> epilogue;
        for (CoreId c : participants) {
            Function &cf = clone(c);
            for (BlockId t : exit_targets) {
                BlockId e = cf.addBlock(fn_->block(region.entry).name +
                                        ".epi" + std::to_string(t) + ".c" +
                                        std::to_string(c));
                cf.block(e).region = region.id;
                epilogue[{c, t}] = e;
                if (c == 0) {
                    // Master: switch mode, collect exit-owned live-outs
                    // from each worker, then joins (decoupled).
                    if (coupled)
                        cf.block(e).append(ops::mode_switch(true));
                    for (CoreId w : workers) {
                        for (const auto &[reg, owner] : exit_owned) {
                            if (owner != w)
                                continue;
                            Operation recv = ops::recv(w, reg);
                            recv.commTag = Operation::CommTag::LiveOut;
                            cf.block(e).append(recv);
                        }
                    }
                    if (!coupled) {
                        for (CoreId w : workers) {
                            Operation recv = ops::recv(w, cf.freshReg(
                                                            RegClass::GPR));
                            recv.commTag = Operation::CommTag::Join;
                            cf.block(e).append(recv);
                        }
                    }
                    RegId btr_reg = cf.freshReg(RegClass::BTR);
                    cf.block(e).append(
                        ops::pbr(btr_reg, CodeRef::to_block(f, t)));
                    cf.block(e).append(ops::bru(btr_reg));
                } else {
                    if (coupled)
                        cf.block(e).append(ops::mode_switch(true));
                    for (const auto &[reg, owner] : exit_owned) {
                        if (owner != c)
                            continue;
                        Operation send = ops::send(0, reg);
                        send.commTag = Operation::CommTag::LiveOut;
                        cf.block(e).append(send);
                    }
                    if (!coupled) {
                        Operation send = ops::send(0, gpr(0));
                        send.commTag = Operation::CommTag::Join;
                        cf.block(e).append(send);
                    }
                    cf.block(e).append(ops::sleep());
                }
            }
        }

        // Retarget an exit CodeRef / fallthrough for a given core.
        auto retarget = [&](CoreId c, BlockId t) -> BlockId {
            return epilogue.at({c, t});
        };

        // --- Joint emission per block ---------------------------------
        for (BlockId b : region.blocks) {
            const BasicBlock &bb = fn_->block(b);
            std::vector<ScheduleSlot> slots;

            auto emit = [&](CoreId c, Operation op) {
                slots.push_back({c, std::move(op)});
            };

            for (u32 i = 0; i < bb.ops.size(); ++i) {
                const Operation &op = bb.ops[i];

                if (op.op == Opcode::PBR) {
                    // Replicate, retargeting exits per core.
                    CodeRef ref = op.codeRef();
                    const bool exit_ref =
                        ref.kind == CodeRef::Kind::Block &&
                        !region.contains(ref.block);
                    for (CoreId c : participants) {
                        Operation copy = op;
                        if (exit_ref) {
                            copy.imm = static_cast<i64>(
                                CodeRef::to_block(f, retarget(c, ref.block))
                                    .encode());
                        }
                        emit(c, copy);
                    }
                    continue;
                }
                if (op.op == Opcode::BR || op.op == Opcode::BRU ||
                    replicated.count({b, i})) {
                    // Replicas: every participant computes it locally
                    // (Fig. 5(c)); no transfer needed for their defs.
                    for (CoreId c : participants)
                        emit(c, op);
                    continue;
                }

                const CoreId home = core_of({b, i});
                emit(home, op);

                const RegId def = op.def();
                if (!def.valid())
                    continue;

                // Flow-sensitive user set: if the register is redefined
                // later in this block, only the uses up to (and at) that
                // redefinition can observe this def — transfer to exactly
                // those cores. Otherwise fall back to the conservative
                // region-wide user set. (Branches only terminate blocks,
                // so no control flow escapes the span.)
                std::set<CoreId> user_set;
                bool redefined = false;
                for (u32 j = i + 1; j < bb.ops.size() && !redefined; ++j) {
                    const Operation &later = bb.ops[j];
                    bool reads_def = false;
                    if (later.op == Opcode::BR) {
                        reads_def = later.src0 == def;
                    } else {
                        for (RegId use : later.uses())
                            if (use == def)
                                reads_def = true;
                    }
                    if (reads_def) {
                        if (later.op == Opcode::BR ||
                            replicated.count({b, j})) {
                            user_set.insert(participants.begin(),
                                            participants.end());
                        } else {
                            user_set.insert(core_of({b, j}));
                        }
                    }
                    if (later.def() == def)
                        redefined = true;
                }
                if (!redefined) {
                    auto uit = users.find(def);
                    if (uit != users.end())
                        user_set.insert(uit->second.begin(),
                                        uit->second.end());
                }

                std::vector<CoreId> remote;
                for (CoreId u : user_set)
                    if (u != home)
                        remote.push_back(u);
                if (remote.empty())
                    continue;

                if (coupled) {
                    if (remote.size() >= 2) {
                        const u32 tid = nextTransferId_++;
                        Operation bc = ops::bcast(def);
                        bc.seqId = tid;
                        emit(home, bc);
                        for (CoreId u : remote) {
                            Operation get = ops::get(Dir::East, def);
                            get.imm = 1; // broadcast GET
                            get.seqId = tid;
                            get.commTag = Operation::CommTag::Bcast;
                            emit(u, get);
                        }
                    } else {
                        CoreId cur = home;
                        routedGeometry_ = true;
                        for (Dir dir : route(home, remote[0])) {
                            const CoreId next = stepCore(cur, dir);
                            const u32 tid = nextTransferId_++;
                            Operation put = ops::put(dir, def);
                            put.seqId = tid;
                            emit(cur, put);
                            Operation get = ops::get(opposite(dir), def);
                            get.seqId = tid;
                            emit(next, get);
                            cur = next;
                        }
                    }
                } else {
                    for (CoreId u : remote) {
                        Operation send = ops::send(u, def);
                        Operation recv = ops::recv(home, def);
                        send.commTag = recv.commTag =
                            (u == 0 && live_out.count(def))
                                ? Operation::CommTag::LiveOut
                                : Operation::CommTag::None;
                        emit(home, send);
                        emit(u, recv);
                    }
                }
            }

            // Write back: schedule coupled blocks, stream decoupled ones.
            if (coupled) {
                BlockSchedule sched =
                    schedule_block(slots, in_.numCores);
                for (CoreId c : participants) {
                    BasicBlock &cb = clone(c).block(b);
                    cb.ops = sched.perCore[c].ops;
                    cb.issueCycles = sched.perCore[c].issueCycles;
                    cb.schedLen = sched.schedLen;
                }
            } else {
                for (const ScheduleSlot &slot : slots)
                    clone(slot.core).block(b).append(slot.op);
                // In-order cores block at a RECV, so a RECV sitting at the
                // producer's mirrored position serialises the receiver's
                // *own* later work (e.g. its independent miss-prone
                // loads) behind the producer. Sink each RECV to just
                // before its first consumer — this is what lets the two
                // load streams of the paper's Figure 8 overlap.
                for (CoreId c : participants)
                    reorderDecoupledBlock(clone(c).block(b).ops);
            }

            // Per-core fallthrough exits into epilogues.
            for (CoreId c : participants) {
                BasicBlock &cb = clone(c).block(b);
                if (bb.fallthrough != kNoBlock &&
                    !region.contains(bb.fallthrough)) {
                    cb.fallthrough = retarget(c, bb.fallthrough);
                }
            }
        }

        // --- Live-in sets per participant ------------------------------
        const std::set<RegId> &entry_live = live_->liveIn(region.entry);
        std::map<CoreId, std::vector<RegId>> live_ins;
        for (CoreId c : participants) {
            if (c == 0)
                continue;
            std::set<RegId> used;
            for (BlockId b : region.blocks) {
                for (const Operation &op : clone(c).block(b).ops) {
                    if (op.op == Opcode::RECV || op.op == Opcode::GET)
                        continue; // transferred values, not live-ins
                    for (RegId use : op.uses())
                        if (use.cls != RegClass::BTR &&
                            entry_live.count(use))
                            used.insert(use);
                }
            }
            // Seed exit-owned registers that are live into the region so
            // the worker's copy is correct even when no def executes.
            for (const auto &[reg, owner] : exit_owned)
                if (owner == c && entry_live.count(reg))
                    used.insert(reg);
            live_ins[c].assign(used.begin(), used.end());
        }

        // --- Preambles --------------------------------------------------
        // Worker preambles first (the master spawns to their block ids).
        std::map<CoreId, BlockId> worker_preamble;
        for (CoreId w : workers) {
            Function &wf = clone(w);
            BlockId p = wf.addBlock(fn_->block(region.entry).name +
                                    ".pre.c" + std::to_string(w));
            wf.block(p).region = region.id;
            for (RegId r : live_ins[w]) {
                Operation recv = ops::recv(0, r);
                recv.commTag = Operation::CommTag::LiveIn;
                wf.block(p).append(recv);
            }
            if (coupled)
                wf.block(p).append(ops::mode_switch(false));
            wf.block(p).fallthrough = region.entry;
            worker_preamble[w] = p;
        }

        Function &master = clone(0);
        BlockId mp = master.addBlock(fn_->block(region.entry).name +
                                     ".pre.c0");
        master.block(mp).region = region.id;
        for (CoreId w : workers) {
            RegId btr_reg = master.freshReg(RegClass::BTR);
            master.block(mp).append(ops::pbr(
                btr_reg, CodeRef::to_block(f, worker_preamble[w])));
            master.block(mp).append(ops::spawn(w, btr_reg));
        }
        for (CoreId w : workers) {
            for (RegId r : live_ins[w]) {
                Operation send = ops::send(w, r);
                send.commTag = Operation::CommTag::LiveIn;
                master.block(mp).append(send);
            }
        }
        if (coupled)
            master.block(mp).append(ops::mode_switch(false));
        master.block(mp).fallthrough = region.entry;
        masterPreamble_[region.id] = mp;
    }

    // --- DOALL regions -----------------------------------------------------

    /**
     * Clone the loop blocks of @p region into @p cf with the header
     * compare retargeted to @p new_bound. Returns the clone of the
     * header; all internal branches are remapped, exit branches and
     * fallthroughs go to @p exit_block.
     */
    BlockId
    cloneChunkLoop(Function &cf, const CompilerRegion &region,
                   const CountedLoop &counted, RegId new_bound,
                   BlockId exit_block)
    {
        const FuncId f = fn_->id;
        std::map<BlockId, BlockId> remap;
        std::vector<BlockId> ordered(region.blocks.begin(),
                                     region.blocks.end());
        for (BlockId b : ordered) {
            BlockId nb = cf.addBlock(fn_->block(b).name + ".chunk");
            cf.block(nb).region = region.id;
            remap[b] = nb;
        }
        const Loop &loop = fa_->loops->loops()[region.loopIdx];
        for (BlockId b : ordered) {
            const BasicBlock &src = fn_->block(b);
            BasicBlock &dst = cf.block(remap[b]);
            for (Operation op : src.ops) {
                if (b == loop.header && op.op == Opcode::CMP &&
                    op.src0 == counted.ivar &&
                    op.cond == counted.exitCond) {
                    op.src1 = new_bound;
                    op.immSrc1 = false;
                    op.imm = 0;
                }
                if (op.op == Opcode::PBR) {
                    CodeRef ref = op.codeRef();
                    if (ref.kind == CodeRef::Kind::Block) {
                        BlockId target = region.contains(ref.block)
                                             ? remap[ref.block]
                                             : exit_block;
                        op.imm = static_cast<i64>(
                            CodeRef::to_block(f, target).encode());
                    }
                }
                dst.append(op);
            }
            if (src.fallthrough != kNoBlock) {
                dst.fallthrough = region.contains(src.fallthrough)
                                      ? remap[src.fallthrough]
                                      : exit_block;
            }
        }
        return remap[loop.header];
    }

    void
    genDoall(const CompilerRegion &region)
    {
        const FuncId f = fn_->id;
        DoallPlan plan = analyze_doall(*fn_, region, *fa_, *live_);
        panic_if_not(plan.feasible, "DOALL codegen on infeasible loop: ",
                     plan.reason);
        const CountedLoop &cl = plan.counted;
        // Chunking width is a cost-model decision, not the machine
        // size: see doallWidth(). Chunk ordinal k runs on
        // worker_cores[k-1] (ordinal 0 is the master, core 0).
        const u16 cores = doallWidth(region);
        const std::vector<CoreId> worker_cores = doallWorkerCores(cores);
        panic_if_not(region.exitEdges.size() >= 1, "DOALL without exit");
        const BlockId exit_target = region.exitEdges.front().second;

        // Serial recovery copy: master's mirrored region blocks keep the
        // original ops.
        Function &master = clone(0);
        for (BlockId b : region.blocks)
            master.block(b).ops = fn_->block(b).ops;

        // --- Worker side ------------------------------------------------
        std::map<CoreId, BlockId> worker_preamble;
        for (size_t wi = 0; wi < worker_cores.size(); ++wi) {
            const CoreId w = worker_cores[wi];
            Function &wf = clone(w);
            BlockId we = wf.addBlock("doall.epi.c" + std::to_string(w));
            wf.block(we).region = region.id;

            RegId wbound = wf.freshReg(RegClass::GPR);
            BlockId chunk_header =
                cloneChunkLoop(wf, region, cl, wbound, we);

            BlockId wp = wf.addBlock("doall.pre.c" + std::to_string(w));
            wf.block(wp).region = region.id;
            {
                BasicBlock &pb = wf.block(wp);
                Operation r0 = ops::recv(0, cl.ivar);
                r0.commTag = Operation::CommTag::LiveIn;
                pb.append(r0);
                Operation r1 = ops::recv(0, wbound);
                r1.commTag = Operation::CommTag::LiveIn;
                pb.append(r1);
                for (RegId r : plan.bodyLiveIns) {
                    Operation rv = ops::recv(0, r);
                    rv.commTag = Operation::CommTag::LiveIn;
                    pb.append(rv);
                }
                pb.append(ops::xbegin(static_cast<i64>(wi + 1)));
                for (const auto &acc : plan.accumulators)
                    pb.append(ops::movi(acc.reg, acc.identity));
                pb.fallthrough = chunk_header;
            }
            worker_preamble[w] = wp;

            // Epilogue: close the transaction, ship partials + join.
            BasicBlock &eb = wf.block(we);
            eb.append(ops::xcommit());
            for (const auto &acc : plan.accumulators) {
                Operation send = ops::send(0, acc.reg);
                send.commTag = Operation::CommTag::LiveOut;
                eb.append(send);
            }
            Operation join = ops::send(0, gpr(0));
            join.commTag = Operation::CommTag::Join;
            eb.append(join);
            eb.append(ops::sleep());
        }

        // --- Master side --------------------------------------------------
        // Block set: P (preamble) -> chunk loop -> V (validate) -> J, with
        // Z (zero-trip) and R (recovery into the serial copy).
        BlockId vb = master.addBlock("doall.validate");
        BlockId jb = master.addBlock("doall.join");
        BlockId zb = master.addBlock("doall.zerotrip");
        BlockId rb = master.addBlock("doall.recover");
        for (BlockId x : {vb, jb, zb, rb})
            master.block(x).region = region.id;

        RegId mbound = master.freshReg(RegClass::GPR);
        BlockId chunk_header =
            cloneChunkLoop(master, region, cl, mbound, vb);

        BlockId pb = master.addBlock("doall.pre");
        master.block(pb).region = region.id;
        masterPreamble_[region.id] = pb;

        {
            BasicBlock &p = master.block(pb);
            // Zero-trip test: ivar already holds the start value.
            RegId pz = master.freshReg(RegClass::PR);
            if (cl.boundReg.valid())
                p.append(ops::cmp(CmpCond::GE, pz, cl.ivar, cl.boundReg));
            else
                p.append(ops::cmpi(CmpCond::GE, pz, cl.ivar, cl.boundImm));
            RegId bz = master.freshReg(RegClass::BTR);
            p.append(ops::pbr(bz, CodeRef::to_block(f, zb)));
            p.append(ops::br(pz, bz));

            // Saves for the serial recovery.
            RegId i_save = master.freshReg(RegClass::GPR);
            p.append(ops::mov(i_save, cl.ivar));
            std::vector<RegId> acc_saves;
            for (const auto &acc : plan.accumulators) {
                RegId s = master.freshReg(RegClass::GPR);
                p.append(ops::mov(s, acc.reg));
                acc_saves.push_back(s);
            }

            // Trip count N = ceil((bound - ivar) / step).
            RegId bound_reg = cl.boundReg;
            if (!bound_reg.valid()) {
                bound_reg = master.freshReg(RegClass::GPR);
                p.append(ops::movi(bound_reg, cl.boundImm));
            }
            RegId t = master.freshReg(RegClass::GPR);
            p.append(ops::sub(t, bound_reg, cl.ivar));
            p.append(ops::addi(t, t, cl.step - 1));
            RegId n = master.freshReg(RegClass::GPR);
            p.append(ops::alui(Opcode::DIV, n, t, cl.step));
            RegId chunk = master.freshReg(RegClass::GPR);
            p.append(ops::addi(chunk, n, cores - 1));
            p.append(ops::alui(Opcode::DIV, chunk, chunk, cores));

            // Spawn + parameterise each worker (chunk ordinal wi + 1).
            for (size_t wi = 0; wi < worker_cores.size(); ++wi) {
                const CoreId w = worker_cores[wi];
                const i64 ord = static_cast<i64>(wi + 1);
                RegId btr_reg = master.freshReg(RegClass::BTR);
                p.append(ops::pbr(
                    btr_reg, CodeRef::to_block(f, worker_preamble[w])));
                p.append(ops::spawn(w, btr_reg));

                // start_w = ivar + (ord * chunk) * step
                RegId off = master.freshReg(RegClass::GPR);
                p.append(ops::alui(Opcode::MUL, off, chunk, ord));
                RegId cnt_hi = master.freshReg(RegClass::GPR);
                p.append(ops::alui(Opcode::MUL, cnt_hi, chunk, ord + 1));
                p.append(ops::alu(Opcode::MIN, cnt_hi, cnt_hi, n));
                // Clamp the start index too (cnt_lo = min(w*chunk, N)).
                p.append(ops::alu(Opcode::MIN, off, off, n));
                RegId start_w = master.freshReg(RegClass::GPR);
                p.append(ops::alui(Opcode::MUL, start_w, off, cl.step));
                p.append(ops::add(start_w, start_w, i_save));
                RegId bound_w = master.freshReg(RegClass::GPR);
                p.append(ops::alui(Opcode::MUL, bound_w, cnt_hi, cl.step));
                p.append(ops::add(bound_w, bound_w, i_save));

                Operation s0 = ops::send(w, start_w);
                s0.commTag = Operation::CommTag::LiveIn;
                p.append(s0);
                Operation s1 = ops::send(w, bound_w);
                s1.commTag = Operation::CommTag::LiveIn;
                p.append(s1);
                for (RegId r : plan.bodyLiveIns) {
                    Operation sv = ops::send(w, r);
                    sv.commTag = Operation::CommTag::LiveIn;
                    p.append(sv);
                }
            }

            // Master's own chunk: [ivar, ivar + min(chunk, N)*step).
            RegId cnt0 = master.freshReg(RegClass::GPR);
            p.append(ops::alu(Opcode::MIN, cnt0, chunk, n));
            p.append(ops::alui(Opcode::MUL, cnt0, cnt0, cl.step));
            p.append(ops::add(mbound, cnt0, i_save));

            p.append(ops::xbegin(0));
            for (const auto &acc : plan.accumulators)
                p.append(ops::movi(acc.reg, acc.identity));
            p.fallthrough = chunk_header;

            // Validate block.
            BasicBlock &v = master.block(vb);
            v.append(ops::xcommit());
            std::vector<std::vector<RegId>> partials(worker_cores.size());
            for (size_t wi = 0; wi < worker_cores.size(); ++wi) {
                const CoreId w = worker_cores[wi];
                for (size_t k = 0; k < plan.accumulators.size(); ++k) {
                    RegId pr_reg = master.freshReg(RegClass::GPR);
                    Operation recv = ops::recv(w, pr_reg);
                    recv.commTag = Operation::CommTag::LiveOut;
                    v.append(recv);
                    partials[wi].push_back(pr_reg);
                }
                RegId jr = master.freshReg(RegClass::GPR);
                Operation recv = ops::recv(w, jr);
                recv.commTag = Operation::CommTag::Join;
                v.append(recv);
            }
            RegId pv = master.freshReg(RegClass::PR);
            {
                Operation validate;
                validate.op = Opcode::XVALIDATE;
                validate.dst = pv;
                v.append(validate);
            }
            // Combine accumulators (exact for the integer ops allowed).
            for (size_t k = 0; k < plan.accumulators.size(); ++k) {
                const auto &acc = plan.accumulators[k];
                v.append(ops::alu(acc.op, acc.reg, acc.reg, acc_saves[k]));
                for (size_t wi = 0; wi < worker_cores.size(); ++wi)
                    v.append(
                        ops::alu(acc.op, acc.reg, acc.reg, partials[wi][k]));
            }
            // Final induction value: i_save + N * step.
            RegId fin = master.freshReg(RegClass::GPR);
            v.append(ops::alui(Opcode::MUL, fin, n, cl.step));
            v.append(ops::add(cl.ivar, fin, i_save));
            RegId br_r = master.freshReg(RegClass::BTR);
            v.append(ops::pbr(br_r, CodeRef::to_block(f, rb)));
            v.append(ops::br(pv, br_r));
            v.fallthrough = jb;

            // Join block: proceed to the exit target.
            BasicBlock &j = master.block(jb);
            RegId bj = master.freshReg(RegClass::BTR);
            j.append(ops::pbr(bj, CodeRef::to_block(f, exit_target)));
            j.append(ops::bru(bj));

            // Zero-trip block.
            BasicBlock &z = master.block(zb);
            RegId bz2 = master.freshReg(RegClass::BTR);
            z.append(ops::pbr(bz2, CodeRef::to_block(f, exit_target)));
            z.append(ops::bru(bz2));

            // Recovery: restore state and run the serial copy.
            BasicBlock &r = master.block(rb);
            r.append(ops::mov(cl.ivar, i_save));
            for (size_t k = 0; k < plan.accumulators.size(); ++k)
                r.append(ops::mov(plan.accumulators[k].reg, acc_saves[k]));
            RegId br_hdr = master.freshReg(RegClass::BTR);
            r.append(ops::pbr(br_hdr, CodeRef::to_block(f, region.entry)));
            r.append(ops::bru(br_hdr));
        }
    }
};

} // namespace

MachineProgram
generate_machine_program(const CodegenInput &input)
{
    return Codegen(input).run();
}

} // namespace voltron
