/**
 * @file
 * Code generation: original program + region modes + partitions ->
 * MachineProgram (per-core clones).
 *
 * Core ideas (paper §3.2/§4.1):
 *
 *  - **Mirrored clones.** Every core gets a clone of every function with
 *    the same block ids; compiler-added blocks (preambles, epilogues,
 *    chunk loops) are appended per core.
 *
 *  - **Transfer-at-def.** When an op defining register r is assigned to
 *    core A and r has users on other cores (including the master when r
 *    is live out of the region), the value is transferred right after the
 *    def: PUT/GET hop chains or a BCAST in coupled mode, SEND/RECV pairs
 *    in decoupled mode. Receivers take the transfer at the same mirrored
 *    position, so per-pair FIFO order is globally consistent.
 *
 *  - **Branch replication.** Every participating core executes every
 *    branch of the region against its own PBR targets; branch predicates
 *    reach remote cores through the same transfer-at-def mechanism
 *    (BCAST in coupled mode — the paper's Figure 5(b)).
 *
 *  - **Region protocol.** The master spawns workers at their region
 *    preamble, sends live-ins, and (for coupled regions) everyone meets
 *    at a MODE_SWITCH barrier. Exits run per-core epilogues: workers
 *    send a join token (decoupled) and SLEEP; the master collects joins
 *    or switches modes and continues.
 *
 *  - **DOALL.** Counted statistical-DOALL loops are chunked across cores
 *    under transactions, with induction-variable replication and
 *    accumulator expansion; XVALIDATE orders the commits and branches to
 *    a serial recovery copy on violation.
 */

#ifndef VOLTRON_COMPILER_CODEGEN_HH_
#define VOLTRON_COMPILER_CODEGEN_HH_

#include <map>
#include <memory>
#include <vector>

#include "compiler/partition.hh"
#include "compiler/regions.hh"
#include "interp/profile.hh"
#include "ir/liveness.hh"
#include "sim/machineprog.hh"

namespace voltron {

/** Everything codegen needs, produced by the driver. */
struct CodegenInput
{
    const Program *prog = nullptr;
    const Profile *profile = nullptr;
    u16 numCores = 1;

    /** Mesh geometry the coupled-mode hop chains are routed against
     * (rows * cols == numCores; the driver resolves defaults). */
    MeshShape mesh;

    /** Regions per function, with global ids and modes already chosen. */
    std::vector<std::vector<CompilerRegion>> regionsOf;

    /** Assignments for Coupled/Strands/Dswp regions, by region id. */
    std::map<RegionId, Assignment> assignments;

    /** Per-function analyses (owned by the driver). */
    std::vector<std::unique_ptr<FuncAnalyses>> *analyses = nullptr;

    /** Allow decoupled cross-core memory dependences via sync tokens. */
    bool allowCrossCoreMemDep = false;
};

/** DOALL feasibility analysis result (exposed for tests). */
struct DoallPlan
{
    bool feasible = false;
    std::string reason;            //!< why not, when infeasible
    CountedLoop counted;
    struct Accumulator
    {
        RegId reg;
        Opcode op;   //!< ADD/MUL/AND/OR/XOR/MIN/MAX
        i64 identity;
    };
    std::vector<Accumulator> accumulators;
    std::vector<RegId> bodyLiveIns; //!< to send to workers (sorted)
};

/** Analyse whether @p region (a Loop region) can run as DOALL. */
DoallPlan analyze_doall(const Function &fn, const CompilerRegion &region,
                        const FuncAnalyses &fa, const Liveness &live);

/** Generate the machine program. */
MachineProgram generate_machine_program(const CodegenInput &input);

} // namespace voltron

#endif // VOLTRON_COMPILER_CODEGEN_HH_
