/**
 * @file
 * Region-level operation dependence graph.
 *
 * Used by the BUG/eBUG partitioners and by DSWP. Nodes are the region's
 * operations; edges cover register flow (including loop-carried flow for
 * loop regions), memory dependences through alias classes, and the
 * conservative control dependences DSWP needs (each branch to every other
 * op of the loop, which correctly forms the loop-control recurrence).
 */

#ifndef VOLTRON_COMPILER_DEPGRAPH_HH_
#define VOLTRON_COMPILER_DEPGRAPH_HH_

#include <map>
#include <vector>

#include "compiler/regions.hh"
#include "interp/profile.hh"
#include "ir/function.hh"

namespace voltron {

/** Identity of an op inside a function. */
struct OpRef
{
    BlockId block = kNoBlock;
    u32 idx = 0;

    bool
    operator<(const OpRef &o) const
    {
        return block != o.block ? block < o.block : idx < o.idx;
    }
    bool
    operator==(const OpRef &o) const
    {
        return block == o.block && idx == o.idx;
    }
};

/** Edge kinds. */
enum class DepKind : u8 {
    RegFlow,   //!< def -> use
    Memory,    //!< ordered aliasing memory ops
    Control,   //!< branch -> controlled op
};

/** One dependence edge. */
struct DepEdge
{
    u32 to = 0;
    DepKind kind = DepKind::RegFlow;
};

/** One node. */
struct DepNode
{
    OpRef ref;
    const Operation *op = nullptr;
    u64 weight = 1;     //!< dynamic execs x latency (profile-scaled)
    u64 execs = 1;      //!< dynamic block executions
    double missRate = 0.0; //!< for memory ops
    u32 aliasClass = 0; //!< union-find class over memSym (0 joins all)
};

/** The graph. */
struct DepGraph
{
    std::vector<DepNode> nodes;
    std::vector<std::vector<DepEdge>> succs;
    std::vector<std::vector<DepEdge>> preds;
    std::map<OpRef, u32> indexOf;

    /** Total node weight. */
    u64 totalWeight() const;

    /** Adjacency restricted to node indices (for SCC). */
    std::vector<std::vector<u32>> adjacency() const;
};

/**
 * Build the dependence graph of @p region in @p fn.
 *
 * @param loop_carried Include loop-carried register-flow and the DSWP
 *        control edges (set for Loop regions when partitioning for DSWP;
 *        BUG/eBUG on straightline regions pass false).
 */
DepGraph build_dep_graph(const Function &fn, const CompilerRegion &region,
                         const Profile &profile, bool loop_carried);

} // namespace voltron

#endif // VOLTRON_COMPILER_DEPGRAPH_HH_
