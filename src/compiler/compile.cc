#include "compiler/compile.hh"

#include <algorithm>

#include "compiler/reassoc.hh"
#include "ir/verifier.hh"
#include "support/error.hh"

namespace voltron {

const char *
strategy_name(Strategy strategy)
{
    switch (strategy) {
      case Strategy::SerialOnly: return "serial";
      case Strategy::IlpOnly: return "ilp";
      case Strategy::TlpOnly: return "tlp";
      case Strategy::LlpOnly: return "llp";
      case Strategy::Hybrid: return "hybrid";
      case Strategy::Adaptive: return "adaptive";
      default: return "?";
    }
}

namespace {

/** Estimated fraction of region time spent in data-cache miss stalls. */
double
miss_fraction(const Function &fn, const CompilerRegion &region,
              const Profile &profile, u32 miss_penalty)
{
    double miss_cycles = 0.0;
    u64 op_cycles = 0;
    for (BlockId b : region.blocks) {
        const BasicBlock &bb = fn.block(b);
        const u64 execs = profile.blockExecs(fn.id, b);
        op_cycles += execs * bb.ops.size();
        for (const Operation &op : bb.ops) {
            if (!is_memory(op.op))
                continue;
            miss_cycles += profile.missRate(fn.id, op.seqId) *
                           static_cast<double>(execs) * miss_penalty;
        }
    }
    const double total = miss_cycles + static_cast<double>(op_cycles);
    return total > 0.0 ? miss_cycles / total : 0.0;
}

u64
region_ops(const Function &fn, const CompilerRegion &region,
           const Profile &profile)
{
    u64 total = 0;
    for (BlockId b : region.blocks)
        total += profile.blockExecs(fn.id, b) * fn.block(b).ops.size();
    return total;
}

} // namespace

MachineProgram
compile_program(const Program &prog, const Profile &profile,
                const CompileOptions &options, SelectionReport *report)
{
    fatal_if_not(options.numCores >= 1 && options.numCores <= kMaxCores,
                 "supported core counts: 1..", kMaxCores);
    const MeshShape mesh = options.meshShape();
    fatal_if_not(mesh.cores() == options.numCores,
                 "mesh ", mesh.rows, "x", mesh.cols, " does not hold ",
                 options.numCores, " cores");
    verify_or_die(prog, VerifyMode::Sequential);

    // Reassociation preserves exact integer semantics, so the golden
    // model (run on the untransformed program) still applies.
    Program optimized = prog;
    if (options.reassociate)
        reassociate_program(optimized);
    const Program &unit = optimized;

    CodegenInput input;
    input.prog = &unit;
    input.profile = &profile;
    input.numCores = options.numCores;
    input.mesh = mesh;
    input.allowCrossCoreMemDep = options.allowCrossCoreMemDep;

    std::vector<std::unique_ptr<FuncAnalyses>> analyses;
    input.analyses = &analyses;

    RegionId next_region = 0;
    const bool parallel =
        options.numCores > 1 && options.strategy != Strategy::SerialOnly;
    // Adaptive starts from the full Hybrid decision tree; overrides are
    // applied on top, after the analyses that gate them exist.
    const bool hybrid_like = options.strategy == Strategy::Hybrid ||
                             options.strategy == Strategy::Adaptive;

    for (const Function &fn : unit.functions) {
        analyses.push_back(std::make_unique<FuncAnalyses>(fn));
        FuncAnalyses &fa = *analyses.back();
        Liveness live(unit, fn, *fa.cfg);

        std::vector<CompilerRegion> regions = form_regions(fn, fa);
        for (CompilerRegion &region : regions) {
            region.id = next_region++;

            // --- Technique selection (paper §4.2) -------------------
            region.mode = ExecMode::Serial;
            double dswp_estimate = 0.0;
            double miss_frac = 0.0;

            const u64 ops = region_ops(fn, region, profile);
            // Entries into the region: loop activations for loops (the
            // header executes once per *iteration*), entry-block
            // executions for straightline regions.
            u64 activations = 1;
            if (region.kind == RegionKind::Loop) {
                const LoopProfile *lp = profile.loop(
                    fn.id, fa.loops->loops()[region.loopIdx].header);
                if (lp)
                    activations = std::max<u64>(lp->activations, 1);
            } else {
                activations = std::max<u64>(
                    profile.blockExecs(fn.id, region.entry), 1);
            }
            const bool worth =
                parallel && region.kind != RegionKind::Glue && ops > 0 &&
                ops / activations >= options.minOpsPerActivation;

            bool doall_ok = false;
            DswpResult dswp;
            if (worth) {
                miss_frac = miss_fraction(fn, region, profile,
                                          options.missPenalty);

                // DOALL eligibility.
                if (region.kind == RegionKind::Loop &&
                    (options.strategy == Strategy::LlpOnly ||
                     hybrid_like)) {
                    const Loop &loop = fa.loops->loops()[region.loopIdx];
                    const LoopProfile *lp =
                        profile.loop(fn.id, loop.header);
                    const double trip =
                        profile.avgTripCount(fn.id, loop.header);
                    if (lp && !lp->crossIterDep &&
                        trip >= options.minDoallTrip) {
                        DoallPlan plan =
                            analyze_doall(fn, region, fa, live);
                        doall_ok = plan.feasible;
                    }
                }

                // DSWP estimate (loops, when allowed).
                if (region.kind == RegionKind::Loop &&
                    (options.strategy == Strategy::TlpOnly ||
                     hybrid_like)) {
                    DepGraph g = build_dep_graph(fn, region, profile,
                                                 /*loop_carried=*/true);
                    PartitionOptions popts = options.partition;
                    popts.numCores = options.numCores;
                    dswp = partition_dswp(g, popts);
                    dswp_estimate = dswp.estimatedSpeedup;
                }

                switch (options.strategy) {
                  case Strategy::IlpOnly:
                    region.mode = ExecMode::Coupled;
                    break;
                  case Strategy::LlpOnly:
                    region.mode =
                        doall_ok ? ExecMode::Doall : ExecMode::Serial;
                    break;
                  case Strategy::TlpOnly:
                    if (region.kind == RegionKind::Loop && dswp.feasible &&
                        dswp_estimate > options.dswpThreshold) {
                        region.mode = ExecMode::Dswp;
                    } else {
                        region.mode = ExecMode::Strands;
                    }
                    break;
                  case Strategy::Hybrid:
                  case Strategy::Adaptive:
                    if (doall_ok) {
                        region.mode = ExecMode::Doall;
                    } else if (region.kind == RegionKind::Loop &&
                               dswp.feasible &&
                               dswp_estimate > options.dswpThreshold) {
                        region.mode = ExecMode::Dswp;
                    } else if (miss_frac > options.missStallFraction) {
                        region.mode = ExecMode::Strands;
                    } else {
                        region.mode = ExecMode::Coupled;
                    }
                    break;
                  case Strategy::SerialOnly:
                    break;
                }
            }

            // Measured override, clamped to feasibility: a mode the
            // partitioner cannot realize silently keeps the heuristic's
            // choice rather than mis-generating code. Deliberately NOT
            // inside the worth gate — the activation heuristic is a
            // guess, and a measured run may show a region it rejected is
            // worth parallelizing (DSWP/DOALL still need their analyses,
            // which only exist for worth regions).
            if (options.strategy == Strategy::Adaptive) {
                auto it = options.modeOverrides.find(region.id);
                if (it != options.modeOverrides.end()) {
                    const ExecMode want = it->second;
                    const bool can_parallel =
                        parallel && region.kind != RegionKind::Glue &&
                        ops > 0;
                    const bool feasible =
                        want == ExecMode::Serial ||
                        ((want == ExecMode::Coupled ||
                          want == ExecMode::Strands) &&
                         can_parallel) ||
                        (want == ExecMode::Dswp && can_parallel &&
                         region.kind == RegionKind::Loop &&
                         dswp.feasible) ||
                        (want == ExecMode::Doall && can_parallel &&
                         doall_ok);
                    if (feasible)
                        region.mode = want;
                }
            }

            // --- Partitioning -----------------------------------------
            if (region.mode == ExecMode::Coupled ||
                region.mode == ExecMode::Strands) {
                DepGraph g = build_dep_graph(fn, region, profile,
                                             /*loop_carried=*/false);
                PartitionOptions popts = options.partition;
                popts.numCores = options.numCores;
                popts.enhanced = region.mode == ExecMode::Strands;
                input.assignments[region.id] = partition_bug(g, popts);
            } else if (region.mode == ExecMode::Dswp) {
                DepGraph g = build_dep_graph(fn, region, profile,
                                             /*loop_carried=*/true);
                PartitionOptions popts = options.partition;
                popts.numCores = options.numCores;
                input.assignments[region.id] =
                    partition_dswp(g, popts).assignment;
            }

            if (report) {
                report->entries.push_back({region.id, fn.id, region.kind,
                                           region.mode, ops, dswp_estimate,
                                           miss_frac});
            }
        }
        input.regionsOf.push_back(std::move(regions));
    }

    MachineProgram mp = generate_machine_program(input);

    for (const Program &cp : mp.perCore)
        verify_or_die(cp, VerifyMode::PerCore);

    return mp;
}

} // namespace voltron
