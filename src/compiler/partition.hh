/**
 * @file
 * Partitioning results and the BUG/eBUG/DSWP partitioner interfaces.
 */

#ifndef VOLTRON_COMPILER_PARTITION_HH_
#define VOLTRON_COMPILER_PARTITION_HH_

#include <map>

#include "compiler/depgraph.hh"

namespace voltron {

/** Op-to-core assignment for one region (branches excluded: replicated). */
using Assignment = std::map<OpRef, CoreId>;

/** Knobs shared by the greedy partitioners. */
struct PartitionOptions
{
    u16 numCores = 4;

    /** Per-hop operand-transfer cost estimate (cycles). */
    u32 transferCost = 1;

    // --- eBUG extensions (paper §4.1) ---

    /** Enable the eBUG edge weights and memory balancing. */
    bool enhanced = false;

    /** Loads with a profiled miss rate above this are "likely missing". */
    double missThreshold = 0.05;

    /** Extra edge weight for breaking a likely-missing load's flow edge. */
    u32 missEdgeWeight = 30;

    /** Pin every op of an alias class to one core (decoupled modes). */
    bool pinAliasClasses = true;

    /** Penalty for assigning a memory op to a memory-crowded core. */
    u32 memImbalancePenalty = 8;
};

/**
 * Bottom-Up Greedy multicluster partitioning (Ellis' BUG, paper §4.1
 * "Compiling for ILP"); with @p opts.enhanced it becomes the paper's
 * eBUG (likely-missing-load weights, alias-class pinning, memory
 * balancing) for decoupled strands.
 *
 * Branch ops (BR/BRU) and their PBRs are not assigned — codegen
 * replicates them.
 */
Assignment partition_bug(const DepGraph &graph,
                         const PartitionOptions &opts);

/** Result of a DSWP partition attempt. */
struct DswpResult
{
    bool feasible = false;
    double estimatedSpeedup = 1.0;
    Assignment assignment;
    u32 stagesUsed = 0;
};

/**
 * Decoupled software pipelining (paper §4.1 "Extracting TLP with DSWP"):
 * SCC condensation of the loop dependence graph, then a greedy weighted
 * partition of the acyclic condensation into up to numCores stages.
 */
DswpResult partition_dswp(const DepGraph &graph,
                          const PartitionOptions &opts);

} // namespace voltron

#endif // VOLTRON_COMPILER_PARTITION_HH_
