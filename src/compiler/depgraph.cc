#include "compiler/depgraph.hh"

#include <algorithm>

#include "isa/latencies.hh"
#include "support/error.hh"

namespace voltron {

u64
DepGraph::totalWeight() const
{
    u64 total = 0;
    for (const DepNode &node : nodes)
        total += node.weight;
    return total;
}

std::vector<std::vector<u32>>
DepGraph::adjacency() const
{
    std::vector<std::vector<u32>> adj(nodes.size());
    for (u32 i = 0; i < succs.size(); ++i)
        for (const DepEdge &e : succs[i])
            adj[i].push_back(e.to);
    return adj;
}

DepGraph
build_dep_graph(const Function &fn, const CompilerRegion &region,
                const Profile &profile, bool loop_carried)
{
    DepGraph g;

    // Nodes, in (block id, op idx) order — block ids follow layout order
    // which is consistent with the structured builder's execution order.
    for (BlockId b : region.blocks) {
        const BasicBlock &bb = fn.block(b);
        const u64 execs = std::max<u64>(profile.blockExecs(fn.id, b), 1);
        for (u32 i = 0; i < bb.ops.size(); ++i) {
            DepNode node;
            node.ref = {b, i};
            node.op = &bb.ops[i];
            node.execs = execs;
            node.weight = execs * op_latency(bb.ops[i].op);
            if (is_memory(bb.ops[i].op))
                node.missRate = profile.missRate(fn.id, bb.ops[i].seqId);
            g.indexOf[node.ref] = static_cast<u32>(g.nodes.size());
            g.nodes.push_back(node);
        }
    }
    g.succs.resize(g.nodes.size());
    g.preds.resize(g.nodes.size());

    auto add_edge = [&](u32 from, u32 to, DepKind kind) {
        if (from == to && kind != DepKind::RegFlow)
            return;
        for (const DepEdge &e : g.succs[from])
            if (e.to == to && e.kind == kind)
                return;
        g.succs[from].push_back({to, kind});
        g.preds[to].push_back({from, kind});
    };

    // Register flow: def -> every use of the same register elsewhere in
    // the region, plus exact intra-block def-use chains. Conservative for
    // partitioning (extra affinity edges never break correctness — the
    // codegen's transfer-at-def discipline provides that).
    std::map<RegId, std::vector<u32>> defs_of, uses_of;
    for (u32 i = 0; i < g.nodes.size(); ++i) {
        const Operation &op = *g.nodes[i].op;
        if (op.def().valid())
            defs_of[op.def()].push_back(i);
        for (RegId use : op.uses())
            uses_of[use].push_back(i);
    }
    for (const auto &[reg, def_nodes] : defs_of) {
        auto it = uses_of.find(reg);
        if (it == uses_of.end())
            continue;
        for (u32 def_node : def_nodes) {
            for (u32 use_node : it->second) {
                const bool forward =
                    g.nodes[def_node].ref < g.nodes[use_node].ref;
                if (forward || loop_carried)
                    add_edge(def_node, use_node, DepKind::RegFlow);
            }
        }
    }

    // Memory dependences via alias classes: memSym 0 joins everything.
    // Within a class containing at least one store, order all pairs (for
    // loop regions the class is treated as a recurrence: edges both ways
    // so DSWP keeps it in one stage).
    std::map<u32, std::vector<u32>> classes;
    bool any_wildcard = false;
    for (u32 i = 0; i < g.nodes.size(); ++i) {
        if (!is_memory(g.nodes[i].op->op))
            continue;
        if (g.nodes[i].op->memSym == 0)
            any_wildcard = true;
        classes[g.nodes[i].op->memSym].push_back(i);
    }
    if (any_wildcard) {
        // Merge every class into the wildcard class.
        auto &all = classes[0];
        for (auto &[sym, members] : classes) {
            if (sym == 0)
                continue;
            all.insert(all.end(), members.begin(), members.end());
        }
        classes.erase(std::next(classes.begin()), classes.end());
    }
    u32 alias_id = 1;
    for (auto &[sym, members] : classes) {
        std::sort(members.begin(), members.end());
        bool has_store = false;
        for (u32 m : members)
            if (is_store(g.nodes[m].op->op))
                has_store = true;
        for (u32 m : members)
            g.nodes[m].aliasClass = alias_id;
        alias_id++;
        if (!has_store)
            continue;
        for (size_t a = 0; a < members.size(); ++a) {
            for (size_t b = a + 1; b < members.size(); ++b) {
                const bool either_store =
                    is_store(g.nodes[members[a]].op->op) ||
                    is_store(g.nodes[members[b]].op->op);
                if (!either_store)
                    continue;
                add_edge(members[a], members[b], DepKind::Memory);
                if (loop_carried)
                    add_edge(members[b], members[a], DepKind::Memory);
            }
        }
    }

    // DSWP control dependences: each branch controls every other op of
    // the loop (next iteration), which builds the loop-control recurrence
    // {cmp, br, induction update} and hangs the body off it.
    if (loop_carried) {
        for (u32 i = 0; i < g.nodes.size(); ++i) {
            const Opcode op = g.nodes[i].op->op;
            if (op != Opcode::BR && op != Opcode::BRU)
                continue;
            for (u32 j = 0; j < g.nodes.size(); ++j) {
                if (j != i)
                    add_edge(i, j, DepKind::Control);
            }
        }
    }

    return g;
}

} // namespace voltron
