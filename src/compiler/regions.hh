/**
 * @file
 * Region formation.
 *
 * Regions tile each function's blocks and are the unit of
 * parallelism-technique selection and mode switching (paper §4.2):
 *
 *  - **Loop regions**: maximal outermost call-free natural loops.
 *  - **Straightline regions**: maximal runs of consecutive call-free
 *    non-loop blocks forming a single-entry subgraph.
 *  - **Glue regions**: everything else (blocks with CALL/RET/HALT, the
 *    function entry block, runs that fail the single-entry check). Glue
 *    always executes serially on the master core.
 */

#ifndef VOLTRON_COMPILER_REGIONS_HH_
#define VOLTRON_COMPILER_REGIONS_HH_

#include <memory>
#include <set>
#include <vector>

#include "ir/cfg.hh"
#include "ir/dom.hh"
#include "ir/loops.hh"
#include "sim/machineprog.hh"

namespace voltron {

/** One region of one function (id assigned globally by the driver). */
struct CompilerRegion
{
    RegionId id = kNoRegion;
    FuncId func = kNoFunc;
    RegionKind kind = RegionKind::Glue;
    ExecMode mode = ExecMode::Serial;

    std::set<BlockId> blocks;
    BlockId entry = kNoBlock;

    /** Edges (from inside, to outside). */
    std::vector<std::pair<BlockId, BlockId>> exitEdges;

    /** For Loop regions: index into the LoopForest. */
    int loopIdx = -1;

    bool contains(BlockId b) const { return blocks.count(b) != 0; }
};

/** Per-function analysis bundle reused across compiler passes. */
struct FuncAnalyses
{
    const Function *fn = nullptr;
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<DomTree> dom;
    std::unique_ptr<LoopForest> loops;

    explicit FuncAnalyses(const Function &f);
};

/**
 * Form the regions of @p fn. Region ids are left unassigned (kNoRegion);
 * the driver numbers them globally. Every block lands in exactly one
 * region.
 */
std::vector<CompilerRegion> form_regions(const Function &fn,
                                         const FuncAnalyses &fa);

} // namespace voltron

#endif // VOLTRON_COMPILER_REGIONS_HH_
