/**
 * @file
 * Cycle scheduler for coupled-mode (lockstep DVLIW) blocks.
 *
 * Consumes a block's jointly-emitted slot list — (core, op) pairs in
 * program order, comm ops carrying transfer-group ids — and produces each
 * core's op list sorted by issue cycle plus the common schedule length.
 *
 * Invariants established (and checked at run time by the simulator):
 *  - one op per core per cycle;
 *  - data, anti, output and memory dependences respected with latencies;
 *  - every op of a transfer group (PUT with its GET, BCAST with its GETs)
 *    issues in the same cycle;
 *  - all BR/BRU ops issue together in the final cycle;
 *  - every op completes by the end of the block (so values are ready at
 *    cycle 0 of any successor block).
 */

#ifndef VOLTRON_COMPILER_SCHEDULE_HH_
#define VOLTRON_COMPILER_SCHEDULE_HH_

#include <vector>

#include "isa/operation.hh"
#include "support/types.hh"

namespace voltron {

/** Comm ops with seqId >= this are transfer-group members. */
inline constexpr u32 kTransferIdBase = 1u << 20;

/** One jointly-emitted slot. */
struct ScheduleSlot
{
    CoreId core = 0;
    Operation op;
};

/** Scheduled output for one core. */
struct CoreSchedule
{
    std::vector<Operation> ops;
    std::vector<u32> issueCycles;
};

/** Whole-block schedule. */
struct BlockSchedule
{
    std::vector<CoreSchedule> perCore;
    u32 schedLen = 0;
};

/** Schedule one coupled block. */
BlockSchedule schedule_block(const std::vector<ScheduleSlot> &slots,
                             u16 num_cores);

} // namespace voltron

#endif // VOLTRON_COMPILER_SCHEDULE_HH_
