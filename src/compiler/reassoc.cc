#include "compiler/reassoc.hh"

#include <algorithm>
#include <set>

#include "support/error.hh"

namespace voltron {

namespace {

bool
is_assoc_comm(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::MUL: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::MIN:
      case Opcode::MAX:
        return true;
      default:
        return false;
    }
}

/** One detected chain: link op indices and their "other" operands. */
struct Chain
{
    RegId acc;
    Opcode op = Opcode::NOP;
    std::vector<u32> links;
    std::vector<RegId> values;
};

/**
 * Find the maximal chain starting at op @p start of @p bb. A link is
 * `acc = acc OP x` (x a register, not acc). The chain ends when acc is
 * read or written by a non-link op, when a link's x is later redefined
 * before the chain end (moving its use would read the wrong value), or
 * at a control op.
 */
Chain
find_chain(const BasicBlock &bb, u32 start)
{
    Chain chain;
    const Operation &first = bb.ops[start];
    chain.acc = first.dst;
    chain.op = first.op;

    auto is_link = [&](const Operation &op, RegId *value) {
        if (op.op != chain.op || op.dst != chain.acc || op.immSrc1)
            return false;
        if (op.src0 == chain.acc && op.src1 != chain.acc &&
            op.src1.valid()) {
            *value = op.src1;
            return true;
        }
        if (op.src1 == chain.acc && op.src0 != chain.acc &&
            op.src0.valid()) {
            *value = op.src0;
            return true;
        }
        return false;
    };

    for (u32 i = start; i < bb.ops.size(); ++i) {
        const Operation &op = bb.ops[i];
        RegId value;
        if (is_link(op, &value)) {
            chain.links.push_back(i);
            chain.values.push_back(value);
            continue;
        }
        if (is_control(op.op) || is_comm(op.op))
            break;
        // Any other touch of the accumulator ends the chain.
        bool touches = op.def() == chain.acc;
        for (RegId use : op.uses())
            if (use == chain.acc)
                touches = true;
        if (touches)
            break;
    }
    if (chain.links.empty())
        return chain;

    // A value redefined between its link and the chain end cannot be
    // moved to the rewrite point: truncate the chain there.
    const u32 end = chain.links.back();
    size_t keep = chain.links.size();
    for (size_t k = 0; k < chain.links.size() && k < keep; ++k) {
        for (u32 j = chain.links[k] + 1; j <= end; ++j) {
            if (bb.ops[j].def() == chain.values[k]) {
                keep = k; // drop this link and everything after
                break;
            }
        }
    }
    chain.links.resize(keep);
    chain.values.resize(keep);
    return chain;
}

} // namespace

ReassocStats
reassociate_function(Function &fn)
{
    ReassocStats stats;
    for (BasicBlock &bb : fn.blocks) {
        for (u32 i = 0; i < bb.ops.size(); ++i) {
            const Operation &op = bb.ops[i];
            if (!is_assoc_comm(op.op) || !op.dst.valid() ||
                op.dst.cls != RegClass::GPR || op.immSrc1) {
                continue;
            }
            if (op.src0 != op.dst && op.src1 != op.dst)
                continue;
            Chain chain = find_chain(bb, i);
            if (chain.links.size() < 3) {
                continue;
            }

            // Rewrite: drop the link ops, insert a balanced tree over the
            // values plus one final accumulate at the last link position.
            const u32 insert_at = chain.links.back();
            std::vector<Operation> tree;
            std::vector<RegId> frontier = chain.values;
            while (frontier.size() > 1) {
                std::vector<RegId> next;
                for (size_t k = 0; k + 1 < frontier.size(); k += 2) {
                    RegId tmp = fn.freshReg(RegClass::GPR);
                    tree.push_back(
                        ops::alu(chain.op, tmp, frontier[k],
                                 frontier[k + 1]));
                    next.push_back(tmp);
                }
                if (frontier.size() % 2 == 1)
                    next.push_back(frontier.back());
                frontier = next;
            }
            tree.push_back(
                ops::alu(chain.op, chain.acc, chain.acc, frontier[0]));

            // Build the new op list: original ops minus links, with the
            // tree inserted where the last link was.
            std::vector<Operation> rewritten;
            rewritten.reserve(bb.ops.size() + tree.size());
            std::set<u32> link_set(chain.links.begin(), chain.links.end());
            for (u32 j = 0; j < bb.ops.size(); ++j) {
                if (j == insert_at) {
                    for (const Operation &top : tree)
                        rewritten.push_back(top);
                }
                if (!link_set.count(j))
                    rewritten.push_back(bb.ops[j]);
            }
            bb.ops = std::move(rewritten);

            stats.chainsRewritten++;
            stats.opsRebalanced += static_cast<u32>(chain.links.size());
            // Restart scanning this block after the rewrite.
            i = ~0u;
        }
    }
    return stats;
}

ReassocStats
reassociate_program(Program &prog)
{
    ReassocStats stats;
    for (Function &fn : prog.functions) {
        ReassocStats fs = reassociate_function(fn);
        stats.chainsRewritten += fs.chainsRewritten;
        stats.opsRebalanced += fs.opsRebalanced;
    }
    return stats;
}

} // namespace voltron
