#include "fuzz/differ.hh"

#include <sstream>

#include "core/voltron.hh"
#include "support/error.hh"

namespace voltron {

namespace {

CompileOptions
mode_options(Strategy strategy, u16 cores)
{
    CompileOptions options;
    options.strategy = strategy;
    options.numCores = cores;
    switch (strategy) {
      case Strategy::TlpOnly:
        // Split the TLP family explicitly: dswpThreshold far above any
        // estimate forces strands, far below forces DSWP.
        options.minOpsPerActivation = 1;
        break;
      case Strategy::LlpOnly:
        options.minOpsPerActivation = 1;
        options.minDoallTrip = 1.0;
        break;
      default:
        break;
    }
    return options;
}

SweepPoint
make_point(const std::string &label, const CompileOptions &options)
{
    SweepPoint p;
    p.label = label + "/c" + std::to_string(options.numCores);
    p.options = options;
    return p;
}

SweepPoint
with_net(SweepPoint p, const std::string &suffix, u32 capacity,
         u32 base_latency, u32 hop_latency)
{
    p.label += "/" + suffix;
    p.overrideNet = true;
    p.queueCapacity = capacity;
    p.queueBaseLatency = base_latency;
    p.hopLatency = hop_latency;
    return p;
}

SweepPoint
with_mesh(SweepPoint p, u16 rows, u16 cols)
{
    p.label += "/mesh" + std::to_string(rows) + "x" + std::to_string(cols);
    p.options.meshRows = rows;
    p.options.meshCols = cols;
    return p;
}

} // namespace

std::vector<SweepPoint>
default_sweep()
{
    std::vector<SweepPoint> sweep;

    struct Mode
    {
        const char *name;
        Strategy strategy;
        double dswpThreshold; //!< <0 keeps the default
    };
    static const Mode kModes[] = {
        {"ilp", Strategy::IlpOnly, -1.0},
        {"strands", Strategy::TlpOnly, 1e9},
        {"dswp", Strategy::TlpOnly, 0.0},
        {"doall", Strategy::LlpOnly, -1.0},
        {"hybrid", Strategy::Hybrid, -1.0},
    };
    // 8 cores (4x2 mesh) joined the sweep when codegen outgrew the
    // paper's 2x2 ceiling; it runs without the adversarial-net variants
    // to keep the per-program cost in check.
    static const u16 kCores[] = {1, 2, 4, 8};

    for (const Mode &mode : kModes) {
        for (const u16 cores : kCores) {
            CompileOptions options = mode_options(mode.strategy, cores);
            if (mode.dswpThreshold >= 0.0)
                options.dswpThreshold = mode.dswpThreshold;
            sweep.push_back(make_point(mode.name, options));
            if (cores == 1 || cores == 8)
                continue; // 1 core: idle network; 8: base point only
            // Adversarial queue mode: minimal buffering, then slow links.
            sweep.push_back(with_net(make_point(mode.name, options),
                                     "qcap1", 1, 1, 1));
            sweep.push_back(with_net(make_point(mode.name, options),
                                     "slownet", 2, 3, 2));
        }
    }

    // Option variants on the largest machine.
    {
        CompileOptions options = mode_options(Strategy::Hybrid, 4);
        options.reassociate = false;
        sweep.push_back(make_point("hybrid-noreassoc", options));
    }
    {
        CompileOptions options = mode_options(Strategy::TlpOnly, 4);
        options.dswpThreshold = 0.0;
        options.allowCrossCoreMemDep = true;
        sweep.push_back(with_net(make_point("dswp-xmem", options), "qcap1",
                                 1, 1, 1));
    }

    // Mesh-shape points: the same core count on different geometries.
    // Hop chains are routed per shape, so each point is a distinct
    // compiled artifact; the 16-core square is the largest machine in
    // the default sweep.
    {
        CompileOptions options = mode_options(Strategy::IlpOnly, 8);
        sweep.push_back(with_mesh(make_point("ilp", options), 2, 4));
    }
    {
        CompileOptions options = mode_options(Strategy::Hybrid, 8);
        sweep.push_back(with_mesh(make_point("hybrid", options), 1, 8));
    }
    {
        CompileOptions options = mode_options(Strategy::TlpOnly, 8);
        options.dswpThreshold = 0.0;
        sweep.push_back(with_net(
            with_mesh(make_point("dswp", options), 2, 4), "qcap1", 1, 1, 1));
    }
    {
        CompileOptions options = mode_options(Strategy::Hybrid, 16);
        sweep.push_back(with_mesh(make_point("hybrid", options), 4, 4));
    }
    return sweep;
}

MachineConfig
machine_config_for(const SweepPoint &point)
{
    const MeshShape shape = point.options.meshShape();
    MachineConfig config = MachineConfig::forMesh(shape.rows, shape.cols);
    if (point.overrideNet) {
        config.net.queueCapacity = point.queueCapacity;
        config.net.queueBaseLatency = point.queueBaseLatency;
        config.net.hopLatency = point.hopLatency;
    }
    config.stepperThreads = point.stepperThreads;
    return config;
}

const char *
divergence_kind_name(Divergence::Kind kind)
{
    switch (kind) {
      case Divergence::Kind::ExitMismatch: return "exit-mismatch";
      case Divergence::Kind::MemoryMismatch: return "memory-mismatch";
      case Divergence::Kind::Panic: return "panic";
      case Divergence::Kind::Fatal: return "fatal";
      default: return "unknown";
    }
}

std::optional<Divergence>
diff_program(const Program &prog, const std::vector<SweepPoint> &sweep)
{
    ArtifactCache::instance().clearMemory();
    VoltronSystem sys(prog); // golden pass; a throw here is a bad input

    for (const SweepPoint &point : sweep) {
        const MachineConfig config = machine_config_for(point);
        Divergence div;
        div.point = point.label;
        try {
            const RunOutcome outcome = sys.run(point.options, config);
            if (!outcome.exitMatches) {
                std::ostringstream os;
                os << "exit value " << outcome.result.exitValue
                   << " != golden " << sys.goldenResult().exitValue;
                div.kind = Divergence::Kind::ExitMismatch;
                div.message = os.str();
                return div;
            }
            if (!outcome.memoryMatches) {
                div.kind = Divergence::Kind::MemoryMismatch;
                div.message =
                    "final data segment differs from the golden image";
                return div;
            }
        } catch (const PanicError &e) {
            div.kind = Divergence::Kind::Panic;
            div.message = e.what();
            return div;
        } catch (const FatalError &e) {
            div.kind = Divergence::Kind::Fatal;
            div.message = e.what();
            return div;
        }
    }
    return std::nullopt;
}

} // namespace voltron
