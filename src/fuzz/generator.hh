/**
 * @file
 * Seeded random-program generator for the differential fuzzer.
 *
 * Emits verifier-legal sequential IR outside the fixed archetype shapes:
 * nested counted loops (immediate and data-dependent bounds), reducible
 * branchy CFGs (if/else diamonds inside loop bodies), call-heavy glue
 * (leaf and phase functions in an acyclic call graph), mixed alias
 * classes with occasional wildcard (memSym 0) memory ops, and
 * induction/accumulator idioms. Every generated program terminates by
 * construction — only counted loops, bounded trip products, masked
 * in-bounds addressing, and guaranteed non-zero divisors — so the golden
 * interpreter defines its behaviour and the differ can sweep compiled
 * configurations against it.
 */

#ifndef VOLTRON_FUZZ_GENERATOR_HH_
#define VOLTRON_FUZZ_GENERATOR_HH_

#include "ir/function.hh"

namespace voltron {

/** Shape knobs for one generated program. */
struct GenOptions
{
    u32 maxArrays = 4;    //!< i64 data objects (>= 2)
    u32 maxLeafFns = 3;   //!< straight-line callable helpers
    u32 maxPhaseFns = 3;  //!< loop-nest functions called from main
    u32 maxLoopDepth = 3; //!< nesting bound per loop nest
    bool allowFloat = true;
    bool allowWildcardAlias = true; //!< emit occasional memSym==0 ops
};

/**
 * Generate one program from @p seed. Deterministic: equal seeds yield
 * byte-identical programs. The result is verified before return (a
 * verifier rejection here is a generator bug and fatals).
 */
Program generate_fuzz_program(u64 seed, const GenOptions &options = {});

} // namespace voltron

#endif // VOLTRON_FUZZ_GENERATOR_HH_
