/**
 * @file
 * Greedy program shrinker for fuzz divergences.
 *
 * Given a diverging program and an oracle ("does this candidate still
 * diverge?"), repeatedly applies reduction passes — drop a non-control
 * operation, halve a loop-bound or other small immediate — keeping a
 * candidate only when it stays verifier-legal, still terminates under
 * the golden interpreter, and still satisfies the oracle. Runs to a
 * fixpoint or an oracle-evaluation budget.
 */

#ifndef VOLTRON_FUZZ_SHRINK_HH_
#define VOLTRON_FUZZ_SHRINK_HH_

#include <functional>

#include "ir/function.hh"

namespace voltron {

/** Returns true while the candidate still exhibits the failure. */
using ShrinkOracle = std::function<bool(const Program &)>;

struct ShrinkStats
{
    u32 evals = 0;    //!< oracle evaluations spent
    u32 accepted = 0; //!< reductions kept
};

/**
 * Shrink @p prog while @p still_fails holds (it must hold for @p prog
 * itself). Every returned program verifies and terminates. @p max_evals
 * bounds the number of oracle calls.
 */
Program shrink_program(Program prog, const ShrinkOracle &still_fails,
                       u32 max_evals = 300, ShrinkStats *stats = nullptr);

} // namespace voltron

#endif // VOLTRON_FUZZ_SHRINK_HH_
