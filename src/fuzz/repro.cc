#include "fuzz/repro.hh"

#include <fstream>

#include "ir/serialize.hh"
#include "ir/verifier.hh"

namespace voltron {

std::vector<u8>
encode_repro(const FuzzRepro &repro)
{
    ByteWriter w;
    w.u32v(kReproMagic);
    w.u32v(kReproVersion);
    w.u64v(repro.seed);
    w.u8v(static_cast<u8>(repro.divergence.kind));
    w.str(repro.divergence.point);
    w.str(repro.divergence.message);
    serialize(w, repro.program);
    return w.take();
}

bool
decode_repro(const std::vector<u8> &bytes, FuzzRepro &repro)
{
    ByteReader r(bytes);
    if (r.u32v() != kReproMagic || r.u32v() != kReproVersion)
        return false;
    repro.seed = r.u64v();
    repro.divergence.kind = static_cast<Divergence::Kind>(r.u8v());
    repro.divergence.point = r.str();
    repro.divergence.message = r.str();
    if (!deserialize(r, repro.program) || !r.atEnd())
        return false;
    // A repro that no longer verifies cannot be replayed meaningfully.
    return verify_program(repro.program).ok();
}

bool
write_repro(const std::string &path, const FuzzRepro &repro)
{
    const std::vector<u8> bytes = encode_repro(repro);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    return os.good();
}

bool
read_repro(const std::string &path, FuzzRepro &repro)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::vector<u8> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
    return decode_repro(bytes, repro);
}

} // namespace voltron
