/**
 * @file
 * Differential runner for the golden-model invariant.
 *
 * One program, one golden interpreter run, then a sweep of compiled
 * executions across every execution-mode family × core count ×
 * adversarial network point. Any compiled run that fails to reproduce
 * the golden exit value and final data segment — or that trips a
 * deterministic invariant panic / fatal (lockstep violation, watchdog
 * deadlock) — is a divergence: a compiler or simulator bug, never a
 * property of the input program.
 */

#ifndef VOLTRON_FUZZ_DIFFER_HH_
#define VOLTRON_FUZZ_DIFFER_HH_

#include <optional>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "ir/function.hh"
#include "sim/machine.hh"

namespace voltron {

/** One compiled configuration to diff against the golden model. */
struct SweepPoint
{
    std::string label;
    /** Compile options, including the mesh geometry: the machine is
     * built from options.meshShape(), so sweep points vary the shape
     * (1x8 vs 2x4 vs 4x2, ...) as freely as any other knob — codegen
     * routes hop chains against whatever shape the point asks for. */
    CompileOptions options;
    /** Network timing overrides applied onto the mesh config. */
    bool overrideNet = false;
    u32 queueCapacity = 64;
    u32 queueBaseLatency = 1;
    u32 hopLatency = 1;
    /** Host threads for the parallel stepper (0 = sequential). The
     * threaded stepper is bit-identical by contract, so diffing a
     * threaded sweep against the golden model is its acceptance
     * harness (voltron-fuzz --stepper-threads). */
    u16 stepperThreads = 0;
};

/**
 * The default sweep: {coupled ILP, decoupled strands, decoupled DSWP,
 * DOALL, hybrid} × {1, 2, 4, 8} cores, plus adversarial network points
 * (queueCapacity 1 and 2, non-default latencies), option variants
 * (reassociation off, cross-core memory deps on) for the multi-core
 * families, and mesh-shape points (non-default geometries at 8 and 16
 * cores) exercising geometry-aware codegen.
 */
std::vector<SweepPoint> default_sweep();

/** The MachineConfig @p point runs under (the point's mesh shape + net
 * overrides) — shared by the differ and tools that replay a failing
 * point. */
MachineConfig machine_config_for(const SweepPoint &point);

/** A compiled run that failed to reproduce the golden model. */
struct Divergence
{
    enum class Kind : u8 {
        ExitMismatch = 1, //!< wrong HALT value
        MemoryMismatch,   //!< wrong final data segment
        Panic,            //!< invariant violation (PanicError)
        Fatal,            //!< FatalError (e.g. watchdog deadlock)
    };
    Kind kind = Kind::ExitMismatch;
    std::string point;   //!< label of the failing sweep point
    std::string message; //!< mismatch description or exception text
};

const char *divergence_kind_name(Divergence::Kind kind);

/**
 * Run @p prog through the golden model and every point of @p sweep;
 * return the first divergence, or nullopt when every configuration
 * reproduces the golden run. Clears the in-process artifact cache (fuzz
 * programs are one-shot; the cache would otherwise grow unboundedly).
 */
std::optional<Divergence>
diff_program(const Program &prog, const std::vector<SweepPoint> &sweep);

} // namespace voltron

#endif // VOLTRON_FUZZ_DIFFER_HH_
