#include "fuzz/shrink.hh"

#include "interp/interp.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/error.hh"

namespace voltron {

namespace {

/** A candidate must stay well-formed and terminating: registers read 0
 * before their first (remaining) write, so dropping a def is legal, but
 * dropping the CMP feeding a loop's exit branch makes it spin — the
 * bounded golden run rejects that cheaply, before the oracle runs. */
bool
candidate_ok(const Program &prog)
{
    if (!verify_program(prog).ok())
        return false;
    try {
        run_golden(prog, 10'000'000);
    } catch (const PanicError &) {
        return false;
    } catch (const FatalError &) {
        return false;
    }
    return true;
}

bool
removable(const Operation &op)
{
    // Control ops and PBRs anchor the CFG; everything else may go.
    return !is_control(op.op) && op.op != Opcode::PBR;
}

/** Immediates worth halving: loop bounds, compare constants, offsets —
 * but never an encoded CodeRef or a data-segment address. */
bool
halvable_imm(const Operation &op)
{
    if (op.op == Opcode::PBR || op.op == Opcode::NOP)
        return false;
    const i64 magnitude = op.imm < 0 ? -op.imm : op.imm;
    return magnitude > 1 && magnitude < static_cast<i64>(kDataBase);
}

} // namespace

Program
shrink_program(Program prog, const ShrinkOracle &still_fails, u32 max_evals,
               ShrinkStats *stats_out)
{
    ShrinkStats stats;

    // Validity is checked before the oracle: a rejected candidate costs
    // one bounded golden run, not a full differential sweep.
    const auto try_candidate = [&](Program &candidate) {
        if (stats.evals >= max_evals || !candidate_ok(candidate))
            return false;
        ++stats.evals;
        if (!still_fails(candidate))
            return false;
        ++stats.accepted;
        return true;
    };

    bool changed = true;
    while (changed && stats.evals < max_evals) {
        changed = false;

        // Pass 1: drop single operations, scanning each block from the
        // end so consumers go before their producers.
        for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
            const size_t n_blocks = prog.functions[fi].blocks.size();
            for (size_t bi = 0; bi < n_blocks; ++bi) {
                size_t oi = prog.functions[fi].blocks[bi].ops.size();
                while (oi-- > 0 && stats.evals < max_evals) {
                    if (!removable(
                            prog.functions[fi].blocks[bi].ops[oi]))
                        continue;
                    Program candidate = prog;
                    auto &ops_vec = candidate.functions[fi].blocks[bi].ops;
                    ops_vec.erase(ops_vec.begin() +
                                  static_cast<std::ptrdiff_t>(oi));
                    if (try_candidate(candidate)) {
                        prog = std::move(candidate);
                        changed = true;
                    }
                }
            }
        }

        // Pass 2: halve loop trip counts and other small immediates.
        for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
            const size_t n_blocks = prog.functions[fi].blocks.size();
            for (size_t bi = 0; bi < n_blocks; ++bi) {
                const size_t n_ops =
                    prog.functions[fi].blocks[bi].ops.size();
                for (size_t oi = 0;
                     oi < n_ops && stats.evals < max_evals; ++oi) {
                    if (!halvable_imm(
                            prog.functions[fi].blocks[bi].ops[oi]))
                        continue;
                    Program candidate = prog;
                    candidate.functions[fi].blocks[bi].ops[oi].imm /= 2;
                    if (try_candidate(candidate)) {
                        prog = std::move(candidate);
                        changed = true;
                    }
                }
            }
        }
    }

    if (stats_out)
        *stats_out = stats;
    return prog;
}

} // namespace voltron
