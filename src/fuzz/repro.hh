/**
 * @file
 * Replayable fuzz-divergence repro files (.vfuzz).
 *
 * A repro captures everything needed to re-execute a divergence found by
 * the differ: the (shrunk) program IR, the seed it was generated from,
 * and the sweep point + divergence the run originally produced. The
 * payload reuses the canonical IR serialization (ir/serialize.hh), so a
 * repro survives across processes; a format-version bump invalidates old
 * corpora explicitly rather than misreading them.
 */

#ifndef VOLTRON_FUZZ_REPRO_HH_
#define VOLTRON_FUZZ_REPRO_HH_

#include <string>
#include <vector>

#include "fuzz/differ.hh"
#include "ir/function.hh"

namespace voltron {

inline constexpr u32 kReproMagic = 0x315a4656; // "VFZ1", little-endian
inline constexpr u32 kReproVersion = 1;

/** One replayable divergence. */
struct FuzzRepro
{
    u64 seed = 0;                //!< generator seed of the original program
    Divergence divergence;       //!< what the original sweep observed
    Program program;             //!< the (possibly shrunk) diverging IR
};

std::vector<u8> encode_repro(const FuzzRepro &repro);
bool decode_repro(const std::vector<u8> &bytes, FuzzRepro &repro);

/** Write @p repro to @p path; returns false on I/O failure. */
bool write_repro(const std::string &path, const FuzzRepro &repro);

/** Read a .vfuzz file; false on I/O failure, bad magic/version, or a
 * corrupt payload. */
bool read_repro(const std::string &path, FuzzRepro &repro);

} // namespace voltron

#endif // VOLTRON_FUZZ_REPRO_HH_
