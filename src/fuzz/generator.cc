#include "fuzz/generator.hh"

#include <string>
#include <vector>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/error.hh"
#include "support/rng.hh"

namespace voltron {

namespace {

struct ArrayInfo
{
    Addr base = 0;
    u64 elems = 0; //!< power of two
    u32 sym = 0;
    bool isF64 = false;
};

class Gen
{
  public:
    Gen(u64 seed, const GenOptions &opt)
        : rng_(seed ? seed : 0x715732f5u), opt_(opt),
          pb_("fuzz-" + std::to_string(seed))
    {
    }

    Program
    build()
    {
        // Function 0 must be the entry, but emitCall needs its callee to
        // exist, so the call-graph leaves are built first and a stub
        // holds slot 0 until the real main (built last, with the full
        // structured API) is swapped in.
        pb_.beginFunction("entry_stub");
        pb_.emitHalt(pb_.emitImm(0));
        pb_.endFunction();

        makeArrays();
        const u32 n_leaves = 1 + static_cast<u32>(rng_.below(opt_.maxLeafFns));
        for (u32 i = 0; i < n_leaves; ++i)
            makeLeaf(i);
        const u32 n_phases =
            1 + static_cast<u32>(rng_.below(opt_.maxPhaseFns));
        for (u32 i = 0; i < n_phases; ++i)
            makePhase(i);
        const FuncId main_id = makeMain();

        Program prog = pb_.take();
        prog.functions[0] = std::move(prog.functions[main_id]);
        prog.functions[0].id = 0;
        prog.functions.pop_back();
        prog.funcByName.erase("entry_stub");
        prog.funcByName["main"] = 0;

        verify_or_die(prog);
        return prog;
    }

  private:
    Rng rng_;
    GenOptions opt_;
    ProgramBuilder pb_;
    std::vector<ArrayInfo> arrays_;
    std::vector<FuncId> leaves_;
    std::vector<FuncId> phases_;

    /** GPRs defined on every path to the current point (scope-managed:
     * definitions inside loop bodies and diamond arms are dropped when
     * the construct closes, so nothing reads a maybe-undefined reg). */
    std::vector<RegId> pool_;

    RegId pick() { return pool_[rng_.below(pool_.size())]; }

    const ArrayInfo &
    pickArray(bool want_f64)
    {
        std::vector<const ArrayInfo *> match;
        for (const ArrayInfo &a : arrays_)
            if (a.isF64 == want_f64)
                match.push_back(&a);
        panic_if_not(!match.empty(), "fuzz generator: no matching array");
        return *match[rng_.below(match.size())];
    }

    u32
    aliasSym(const ArrayInfo &arr)
    {
        return opt_.allowWildcardAlias && rng_.chance(0.15) ? 0 : arr.sym;
    }

    void
    makeArrays()
    {
        const u32 n = 2 + static_cast<u32>(rng_.below(opt_.maxArrays - 1));
        for (u32 i = 0; i < n; ++i) {
            const u64 elems = 8ULL << rng_.below(4); // 8..64
            std::vector<i64> init(elems);
            for (i64 &v : init)
                v = static_cast<i64>(rng_.next()) >> 24; // moderate values
            ArrayInfo a;
            a.base = pb_.allocArrayI64("arr" + std::to_string(i), init);
            a.elems = elems;
            a.sym = pb_.lastSymbol();
            arrays_.push_back(a);
        }
        if (opt_.allowFloat) {
            const u64 elems = 8ULL << rng_.below(3);
            std::vector<double> init(elems);
            for (double &v : init)
                v = rng_.uniform() * 1000.0 - 500.0;
            ArrayInfo a;
            a.base = pb_.allocArrayF64("farr", init);
            a.elems = elems;
            a.sym = pb_.lastSymbol();
            a.isF64 = true;
            arrays_.push_back(a);
        }
    }

    /** Address of a masked in-bounds element: base + (src & (n-1)) * 8. */
    RegId
    elementAddr(const ArrayInfo &arr, RegId src)
    {
        RegId idx = pb_.emit(ops::alui(Opcode::AND, pb_.newGpr(), src,
                                       static_cast<i64>(arr.elems - 1)));
        RegId off = pb_.emit(ops::alui(Opcode::SHL, pb_.newGpr(), idx, 3));
        RegId base = pb_.emitImm(static_cast<i64>(arr.base));
        return pb_.emit(ops::add(pb_.newGpr(), base, off));
    }

    /** A fresh integer value computed from the pool (never traps: DIV and
     * REM get a divisor masked into [1, 63]). */
    RegId
    emitAluValue()
    {
        static const Opcode kOps[] = {
            Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::AND,
            Opcode::OR,  Opcode::XOR, Opcode::MIN, Opcode::MAX,
            Opcode::SHL, Opcode::SHR, Opcode::SRA, Opcode::DIV,
            Opcode::REM,
        };
        const Opcode op = kOps[rng_.below(sizeof(kOps) / sizeof(kOps[0]))];
        RegId a = pick();
        RegId dst = pb_.newGpr();
        if (op == Opcode::DIV || op == Opcode::REM) {
            RegId m = pb_.emit(
                ops::alui(Opcode::AND, pb_.newGpr(), pick(), 63));
            RegId d = pb_.emit(ops::alui(Opcode::OR, pb_.newGpr(), m, 1));
            pb_.emit(ops::alu(op, dst, a, d));
        } else if (rng_.chance(0.35)) {
            pb_.emit(ops::alui(op, dst, a, rng_.range(-64, 64)));
        } else {
            pb_.emit(ops::alu(op, dst, a, pick()));
        }
        pool_.push_back(dst);
        return dst;
    }

    /** Fold a pool value into @p acc (accumulator idiom). */
    void
    bumpAccum(RegId acc)
    {
        static const Opcode kFold[] = {Opcode::ADD, Opcode::SUB, Opcode::XOR,
                                       Opcode::ADD, Opcode::MAX};
        const Opcode op = kFold[rng_.below(5)];
        pb_.emit(ops::alu(op, acc, acc, pick()));
    }

    /** Load from or store to a random i64 array, in bounds by masking. */
    void
    emitMemOp(RegId iv)
    {
        const ArrayInfo &arr = pickArray(false);
        RegId src = rng_.chance(0.6) ? iv : pick();
        RegId addr = elementAddr(arr, src);
        const u32 sym = aliasSym(arr);
        if (rng_.chance(0.55)) {
            const bool narrow = rng_.chance(0.25);
            RegId v = pb_.emitLoad(pb_.newGpr(), addr, 0, sym,
                                   narrow ? 4 : 8,
                                   narrow && rng_.chance(0.5));
            pool_.push_back(v);
        } else {
            pb_.emitStore(addr, 0, pick(), sym);
        }
    }

    /** Bit-exact FP traffic: load two elements, combine, store back. */
    void
    emitFpOp()
    {
        if (!opt_.allowFloat)
            return;
        const ArrayInfo &arr = pickArray(true);
        RegId base = pb_.emitImm(static_cast<i64>(arr.base));
        const u32 sym = aliasSym(arr);
        RegId f1 = pb_.emitLoadF(
            pb_.newFpr(), base,
            static_cast<i64>(rng_.below(arr.elems)) * 8, sym);
        RegId f2 = pb_.emitLoadF(
            pb_.newFpr(), base,
            static_cast<i64>(rng_.below(arr.elems)) * 8, sym);
        static const Opcode kFp[] = {Opcode::FADD, Opcode::FSUB,
                                     Opcode::FMUL};
        RegId f3 = pb_.emit(
            ops::falu(kFp[rng_.below(3)], pb_.newFpr(), f1, f2));
        pb_.emitStoreF(base, static_cast<i64>(rng_.below(arr.elems)) * 8,
                       f3, sym);
    }

    /** A reducible if/else diamond mutating the pre-defined @p out. */
    void
    emitDiamond(RegId out)
    {
        static const CmpCond kConds[] = {CmpCond::EQ,  CmpCond::NE,
                                         CmpCond::LT,  CmpCond::GE,
                                         CmpCond::GT,  CmpCond::ULT,
                                         CmpCond::UGE};
        const CmpCond cond = kConds[rng_.below(7)];
        RegId p = pb_.newPr();
        if (rng_.chance(0.5))
            pb_.emit(ops::cmpi(cond, p, pick(), rng_.range(-32, 32)));
        else
            pb_.emit(ops::cmp(cond, p, pick(), pick()));
        const bool with_else = rng_.chance(0.7);
        IfHandles h = pb_.beginIf(p, with_else, "fzif");
        {
            const size_t mark = pool_.size();
            emitAluValue();
            pb_.emit(ops::alu(Opcode::ADD, out, out, pick()));
            pool_.resize(mark);
        }
        if (with_else) {
            pb_.elseBranch(h);
            const size_t mark = pool_.size();
            pb_.emit(ops::alui(Opcode::XOR, out, out, rng_.range(1, 255)));
            pool_.resize(mark);
        }
        pb_.endIf(h);
    }

    /** Call a previously built leaf, feeding the result to the pool. */
    void
    emitLeafCall(RegId acc)
    {
        if (leaves_.empty())
            return;
        const FuncId callee = leaves_[rng_.below(leaves_.size())];
        const u16 nargs = pb_.program().function(callee).numArgs;
        std::vector<RegId> args;
        for (u16 i = 0; i < nargs; ++i)
            args.push_back(pick());
        RegId r = pb_.emitCall(callee, args);
        pool_.push_back(r);
        bumpAccum(acc);
    }

    /** One counted loop; recurses for nests up to maxLoopDepth deep. */
    void
    loopNest(u32 depth, RegId acc)
    {
        RegId iv = pb_.newGpr();
        LoopHandles h;
        if (rng_.chance(0.3)) {
            // Data-dependent trip count, clamped into [1, 16].
            const ArrayInfo &arr = pickArray(false);
            RegId base = pb_.emitImm(static_cast<i64>(arr.base));
            RegId ld = pb_.emitLoad(
                pb_.newGpr(), base,
                static_cast<i64>(rng_.below(arr.elems)) * 8, arr.sym);
            RegId m =
                pb_.emit(ops::alui(Opcode::AND, pb_.newGpr(), ld, 15));
            RegId b = pb_.emit(ops::alui(Opcode::OR, pb_.newGpr(), m, 1));
            h = pb_.forLoopReg(iv, 0, b, 1, "fzloop");
        } else {
            static const i64 kTrips[] = {3, 4, 5, 8, 13, 16, 32};
            i64 trip = kTrips[rng_.below(7)];
            if (depth > 1 && trip > 8)
                trip = 8; // bound the nest's trip product
            const i64 step = rng_.chance(0.2) ? 2 : 1;
            h = pb_.forLoop(iv, 0, trip * step, step, "fzloop");
        }

        const size_t mark = pool_.size();
        pool_.push_back(iv);
        bool nested = false;
        const u32 n_stmts = 2 + static_cast<u32>(rng_.below(4));
        for (u32 s = 0; s < n_stmts; ++s) {
            const u64 roll = rng_.below(100);
            if (roll < 30) {
                emitMemOp(iv);
            } else if (roll < 45) {
                emitAluValue();
            } else if (roll < 60) {
                bumpAccum(acc);
            } else if (roll < 72) {
                emitDiamond(acc);
            } else if (roll < 82) {
                emitLeafCall(acc);
            } else if (roll < 90 && depth < opt_.maxLoopDepth && !nested) {
                loopNest(depth + 1, acc);
                nested = true;
            } else {
                emitFpOp();
            }
        }
        // Induction idiom + guaranteed observable body.
        pb_.emit(ops::alu(Opcode::ADD, acc, acc, iv));
        pool_.resize(mark);
        pb_.endCountedLoop(h);
    }

    void
    makeLeaf(u32 idx)
    {
        const u16 nargs = 1 + static_cast<u16>(rng_.below(3));
        const FuncId f = pb_.beginFunction("leaf" + std::to_string(idx),
                                           nargs, true);
        pool_.clear();
        for (u16 a = 1; a <= nargs; ++a)
            pool_.push_back(gpr(a));
        pool_.push_back(pb_.emitImm(rng_.range(-128, 128)));
        const u32 n = 2 + static_cast<u32>(rng_.below(5));
        for (u32 i = 0; i < n; ++i)
            emitAluValue();
        if (rng_.chance(0.4)) {
            RegId out = pb_.emitImm(rng_.range(0, 15));
            pool_.push_back(out);
            emitDiamond(out);
        }
        pb_.emit(ops::mov(gpr(0), pick()));
        pb_.emit(ops::ret());
        pb_.endFunction();
        leaves_.push_back(f);
    }

    void
    makePhase(u32 idx)
    {
        const u16 nargs = 1 + static_cast<u16>(rng_.below(2));
        const FuncId f = pb_.beginFunction("phase" + std::to_string(idx),
                                           nargs, true);
        pool_.clear();
        for (u16 a = 1; a <= nargs; ++a)
            pool_.push_back(gpr(a));
        pool_.push_back(pb_.emitImm(rng_.range(-100, 100)));
        RegId acc = pb_.emitImm(rng_.range(0, 50));
        pool_.push_back(acc);

        const u32 nests = 1 + static_cast<u32>(rng_.below(2));
        for (u32 n = 0; n < nests; ++n) {
            loopNest(1, acc);
            if (rng_.chance(0.5))
                emitDiamond(acc);
            if (rng_.chance(0.4))
                emitMemOp(pick());
        }
        pb_.emit(ops::mov(gpr(0), acc));
        pb_.emit(ops::ret());
        pb_.endFunction();
        phases_.push_back(f);
    }

    FuncId
    makeMain()
    {
        const FuncId f = pb_.beginFunction("main", 0, false);
        pool_.clear();
        pool_.push_back(pb_.emitImm(rng_.range(-64, 64)));
        pool_.push_back(pb_.emitImm(rng_.range(1, 100)));
        RegId result = pb_.emitImm(0);
        pool_.push_back(result);

        if (rng_.chance(0.4))
            loopNest(1, result);
        for (const FuncId phase : phases_) {
            const u16 nargs = pb_.program().function(phase).numArgs;
            std::vector<RegId> args;
            for (u16 a = 0; a < nargs; ++a)
                args.push_back(pick());
            RegId r = pb_.emitCall(phase, args);
            pool_.push_back(r);
            pb_.emit(ops::alu(rng_.chance(0.5) ? Opcode::XOR : Opcode::ADD,
                              result, result, r));
            if (rng_.chance(0.3))
                emitMemOp(pick());
        }
        if (rng_.chance(0.5))
            emitLeafCall(result);
        pb_.emitHalt(result);
        pb_.endFunction();
        return f;
    }
};

} // namespace

Program
generate_fuzz_program(u64 seed, const GenOptions &options)
{
    fatal_if_not(options.maxArrays >= 2 && options.maxLeafFns >= 1 &&
                     options.maxPhaseFns >= 1 && options.maxLoopDepth >= 1,
                 "generate_fuzz_program: degenerate GenOptions");
    return Gen(seed, options).build();
}

} // namespace voltron
