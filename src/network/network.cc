#include "network/network.hh"

#include <cstdlib>

#include "support/error.hh"

namespace voltron {

OperandNetwork::OperandNetwork(const NetworkConfig &config) : config_(config)
{
    fatal_if_not(config.rows >= 1 && config.cols >= 1, "empty mesh");
    fatal_if_not(numCores() <= kMaxCores, "mesh larger than ", kMaxCores,
                 " cores");
    const size_t n = numCores();
    if (config_.legacyScanQueues) {
        recvQueues_.resize(n);
    } else {
        dataLinks_.resize(n * n);
        spawnQueues_.resize(n);
        spawnInFlight_.assign(n * n, 0);
        totalQueued_.assign(n, 0);
    }
    links_.resize(n * 4);
}

u32
OperandNetwork::hops(CoreId a, CoreId b) const
{
    const int dr = static_cast<int>(rowOf(a)) - static_cast<int>(rowOf(b));
    const int dc = static_cast<int>(colOf(a)) - static_cast<int>(colOf(b));
    return static_cast<u32>(std::abs(dr) + std::abs(dc));
}

CoreId
OperandNetwork::neighbor(CoreId core, Dir dir) const
{
    const u16 row = rowOf(core), col = colOf(core);
    switch (dir) {
      case Dir::East:
        return col + 1 < config_.cols ? static_cast<CoreId>(core + 1)
                                      : kNoCore;
      case Dir::West:
        return col > 0 ? static_cast<CoreId>(core - 1) : kNoCore;
      case Dir::South:
        return row + 1 < config_.rows
                   ? static_cast<CoreId>(core + config_.cols)
                   : kNoCore;
      case Dir::North:
        return row > 0 ? static_cast<CoreId>(core - config_.cols) : kNoCore;
      default:
        panic("bad direction");
    }
}

bool
OperandNetwork::sendWouldStall(CoreId from, CoreId to, bool is_spawn) const
{
    // Back-pressure is per (sender, receiver) pair: one producer running
    // ahead cannot exhaust the receiver's buffering for other senders
    // (which would deadlock pipelines whose consumer is waiting on a
    // slower third core). Spawns and data messages are drained by
    // different consumers (trySpawn vs tryRecv), so each class only
    // counts against its own slots.
    if (to >= numCores())
        return false; // send() will panic on the unknown target
    if (config_.legacyScanQueues) {
        u32 in_flight = 0;
        for (const Message &msg : recvQueues_[to])
            if (msg.from == from && msg.isSpawn == is_spawn)
                in_flight++;
        return in_flight >= config_.queueCapacity;
    }
    const u32 in_flight = is_spawn
                              ? spawnInFlight_[linkIdx(to, from)]
                              : static_cast<u32>(
                                    dataLinks_[linkIdx(to, from)].size());
    return in_flight >= config_.queueCapacity;
}

void
OperandNetwork::send(CoreId from, CoreId to, u64 value, Cycle now,
                     bool is_spawn)
{
    panic_if_not(from != to, "core sending to itself");
    panic_if_not(to < numCores(), "send to unknown core");
    panic_if_not(!sendWouldStall(from, to, is_spawn),
                 "send into a full queue (caller must stall first)");
    Message msg;
    msg.from = from;
    msg.value = value;
    msg.arrivesAt = now + config_.queueBaseLatency +
                    hops(from, to) * config_.hopLatency;
    msg.isSpawn = is_spawn;
    size_t depth;
    if (config_.legacyScanQueues) {
        recvQueues_[to].push_back(msg);
        depth = recvQueues_[to].size();
    } else {
        if (is_spawn) {
            spawnQueues_[to].push_back(msg);
            spawnInFlight_[linkIdx(to, from)]++;
        } else {
            dataLinks_[linkIdx(to, from)].push_back(msg);
        }
        depth = ++totalQueued_[to];
    }
    stats_.add("net.messages");
    if (is_spawn)
        stats_.add("net.spawns");
    hopLatency_.record(msg.arrivesAt - now);
    queueDepth_.record(depth);
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = from;
        ev.kind = TraceEventKind::NetSend;
        ev.arg16 = to;
        ev.arg8 = is_spawn ? 1 : 0;
        ev.arg32 = static_cast<u32>(depth);
        ev.arg64 = msg.arrivesAt;
        trace_->emit(ev);
    }
}

void
OperandNetwork::traceRecv(CoreId me, CoreId from, bool is_spawn, Cycle now,
                          Cycle arrived, size_t depth_after)
{
    TraceEvent ev;
    ev.cycle = now;
    ev.core = me;
    ev.kind = TraceEventKind::NetRecv;
    ev.arg16 = from;
    ev.arg8 = is_spawn ? 1 : 0;
    ev.arg32 = static_cast<u32>(depth_after);
    ev.arg64 = now - arrived;
    trace_->emit(ev);
}

std::optional<u64>
OperandNetwork::tryRecv(CoreId me, CoreId from, Cycle now)
{
    if (me >= numCores())
        return std::nullopt;
    if (config_.legacyScanQueues) {
        auto &queue = recvQueues_[me];
        // CAM search: the oldest message from the requested sender. FIFO
        // per (sender, receiver) pair is preserved because we scan in
        // order.
        for (auto mit = queue.begin(); mit != queue.end(); ++mit) {
            if (mit->from != from || mit->isSpawn)
                continue;
            if (mit->arrivesAt > now)
                return std::nullopt; // in flight; keep FIFO order — stall
            u64 value = mit->value;
            const Cycle arrived = mit->arrivesAt;
            queue.erase(mit);
            stats_.add("net.receives");
            if (trace_)
                traceRecv(me, from, false, now, arrived, queue.size());
            return value;
        }
        return std::nullopt;
    }
    // Indexed: the virtual link *is* the per-pair FIFO; its head is the
    // oldest message from this sender, and an in-flight head stalls the
    // receive exactly as the CAM scan does.
    auto &link = dataLinks_[linkIdx(me, from)];
    if (link.empty() || link.front().arrivesAt > now)
        return std::nullopt;
    const u64 value = link.front().value;
    const Cycle arrived = link.front().arrivesAt;
    link.pop_front();
    const size_t depth = --totalQueued_[me];
    stats_.add("net.receives");
    if (trace_)
        traceRecv(me, from, false, now, arrived, depth);
    return value;
}

std::optional<u64>
OperandNetwork::trySpawn(CoreId me, Cycle now)
{
    if (me >= numCores())
        return std::nullopt;
    if (config_.legacyScanQueues) {
        auto &queue = recvQueues_[me];
        for (auto mit = queue.begin(); mit != queue.end(); ++mit) {
            if (!mit->isSpawn)
                continue;
            if (mit->arrivesAt > now)
                return std::nullopt;
            u64 value = mit->value;
            const CoreId from = mit->from;
            const Cycle arrived = mit->arrivesAt;
            queue.erase(mit);
            if (trace_)
                traceRecv(me, from, true, now, arrived, queue.size());
            return value;
        }
        return std::nullopt;
    }
    // Indexed: spawns keep their own insertion-order queue, so the head
    // is the oldest *enqueued* spawn across senders — the message the
    // CAM scan would find first — and an in-flight head stalls the poll.
    auto &queue = spawnQueues_[me];
    if (queue.empty() || queue.front().arrivesAt > now)
        return std::nullopt;
    const u64 value = queue.front().value;
    const CoreId from = queue.front().from;
    const Cycle arrived = queue.front().arrivesAt;
    queue.pop_front();
    spawnInFlight_[linkIdx(me, from)]--;
    const size_t depth = --totalQueued_[me];
    if (trace_)
        traceRecv(me, from, true, now, arrived, depth);
    return value;
}

bool
OperandNetwork::recvDue(CoreId me, CoreId from, Cycle now) const
{
    if (me >= numCores())
        return false;
    if (config_.legacyScanQueues) {
        for (const Message &msg : recvQueues_[me]) {
            if (msg.from != from || msg.isSpawn)
                continue;
            return msg.arrivesAt <= now;
        }
        return false;
    }
    const auto &link = dataLinks_[linkIdx(me, from)];
    return !link.empty() && link.front().arrivesAt <= now;
}

bool
OperandNetwork::spawnDue(CoreId me, Cycle now) const
{
    if (me >= numCores())
        return false;
    if (config_.legacyScanQueues) {
        for (const Message &msg : recvQueues_[me]) {
            if (!msg.isSpawn)
                continue;
            return msg.arrivesAt <= now;
        }
        return false;
    }
    const auto &queue = spawnQueues_[me];
    return !queue.empty() && queue.front().arrivesAt <= now;
}

size_t
OperandNetwork::queuedFor(CoreId me) const
{
    if (me >= numCores())
        return 0;
    if (config_.legacyScanQueues)
        return recvQueues_[me].size();
    return totalQueued_[me];
}

Cycle
OperandNetwork::nextArrival(Cycle after) const
{
    Cycle best = kNoArrival;
    auto scan = [&](const std::deque<Message> &queue) {
        for (const Message &msg : queue)
            if (msg.arrivesAt > after && msg.arrivesAt < best)
                best = msg.arrivesAt;
    };
    if (config_.legacyScanQueues) {
        for (const auto &queue : recvQueues_)
            scan(queue);
        return best;
    }
    // O(active messages): only buffered messages are visited; the empty
    // links cost one size check each.
    for (const auto &link : dataLinks_)
        if (!link.empty())
            scan(link);
    for (const auto &queue : spawnQueues_)
        if (!queue.empty())
            scan(queue);
    return best;
}

void
OperandNetwork::putDirect(CoreId core, Dir dir, u64 value, Cycle now)
{
    panic_if_not(neighbor(core, dir) != kNoCore,
                 "PUT off the edge of the mesh");
    links_[core * 4 + static_cast<u8>(dir)] = {value, now};
    stats_.add("net.puts");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = core;
        ev.kind = TraceEventKind::NetPut;
        ev.arg8 = static_cast<u8>(dir);
        trace_->emit(ev);
    }
}

u64
OperandNetwork::getDirect(CoreId me, Dir dir, Cycle now)
{
    const CoreId from = neighbor(me, dir);
    panic_if_not(from != kNoCore, "GET off the edge of the mesh");
    const LinkLatch &latch =
        links_[from * 4 + static_cast<u8>(opposite(dir))];
    panic_if_not(latch.cycle == now,
                 "GET with no same-cycle PUT on the link (core ", me,
                 " dir ", dir_name(dir), " cycle ", now,
                 ") — coupled-mode schedule bug");
    stats_.add("net.gets");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = me;
        ev.kind = TraceEventKind::NetGet;
        ev.arg8 = static_cast<u8>(dir);
        trace_->emit(ev);
    }
    return latch.value;
}

void
OperandNetwork::broadcast(CoreId from, u64 value, Cycle now)
{
    // One shared wire: a second same-cycle BCAST would silently
    // overwrite the first for every reader. The scheduler serialises
    // broadcasts, so hitting this means a compiler bug.
    panic_if_not(!bcast_ || bcast_->second != now || bcastFrom_ == from,
                 "two BCASTs in one cycle (cores ", bcastFrom_, " and ",
                 from, ", cycle ", now, ") — coupled-mode schedule bug");
    bcast_ = {value, now};
    bcastFrom_ = from;
    stats_.add("net.bcasts");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = from;
        ev.kind = TraceEventKind::NetBcast;
        trace_->emit(ev);
    }
}

u64
OperandNetwork::getBroadcast(CoreId me, Cycle now)
{
    panic_if_not(bcast_ && bcast_->second == now && bcastFrom_ != me,
                 "broadcast GET with no same-cycle BCAST (core ", me,
                 " cycle ", now, ") — coupled-mode schedule bug");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = me;
        ev.kind = TraceEventKind::NetGet;
        ev.arg16 = 1;
        trace_->emit(ev);
    }
    return bcast_->first;
}

} // namespace voltron
