#include "network/network.hh"

#include <cstdlib>

#include "support/error.hh"

namespace voltron {

OperandNetwork::OperandNetwork(const NetworkConfig &config) : config_(config)
{
    fatal_if_not(config.rows >= 1 && config.cols >= 1, "empty mesh");
    recvQueues_.resize(numCores());
}

u32
OperandNetwork::hops(CoreId a, CoreId b) const
{
    const int dr = static_cast<int>(rowOf(a)) - static_cast<int>(rowOf(b));
    const int dc = static_cast<int>(colOf(a)) - static_cast<int>(colOf(b));
    return static_cast<u32>(std::abs(dr) + std::abs(dc));
}

CoreId
OperandNetwork::neighbor(CoreId core, Dir dir) const
{
    const u16 row = rowOf(core), col = colOf(core);
    switch (dir) {
      case Dir::East:
        return col + 1 < config_.cols ? static_cast<CoreId>(core + 1)
                                      : kNoCore;
      case Dir::West:
        return col > 0 ? static_cast<CoreId>(core - 1) : kNoCore;
      case Dir::South:
        return row + 1 < config_.rows
                   ? static_cast<CoreId>(core + config_.cols)
                   : kNoCore;
      case Dir::North:
        return row > 0 ? static_cast<CoreId>(core - config_.cols) : kNoCore;
      default:
        panic("bad direction");
    }
}

bool
OperandNetwork::sendWouldStall(CoreId from, CoreId to, bool is_spawn) const
{
    // Back-pressure is per (sender, receiver) pair: one producer running
    // ahead cannot exhaust the receiver's buffering for other senders
    // (which would deadlock pipelines whose consumer is waiting on a
    // slower third core). Spawns and data messages are drained by
    // different consumers (trySpawn vs tryRecv), so each class only
    // counts against its own slots.
    if (to >= recvQueues_.size())
        return false; // send() will panic on the unknown target
    u32 in_flight = 0;
    for (const Message &msg : recvQueues_[to])
        if (msg.from == from && msg.isSpawn == is_spawn)
            in_flight++;
    return in_flight >= config_.queueCapacity;
}

void
OperandNetwork::send(CoreId from, CoreId to, u64 value, Cycle now,
                     bool is_spawn)
{
    panic_if_not(from != to, "core sending to itself");
    panic_if_not(to < numCores(), "send to unknown core");
    panic_if_not(!sendWouldStall(from, to, is_spawn),
                 "send into a full queue (caller must stall first)");
    Message msg;
    msg.from = from;
    msg.value = value;
    msg.arrivesAt = now + config_.queueBaseLatency +
                    hops(from, to) * config_.hopLatency;
    msg.isSpawn = is_spawn;
    recvQueues_[to].push_back(msg);
    stats_.add("net.messages");
    if (is_spawn)
        stats_.add("net.spawns");
    hopLatency_.record(msg.arrivesAt - now);
    queueDepth_.record(recvQueues_[to].size());
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = from;
        ev.kind = TraceEventKind::NetSend;
        ev.arg16 = to;
        ev.arg8 = is_spawn ? 1 : 0;
        ev.arg32 = static_cast<u32>(recvQueues_[to].size());
        ev.arg64 = msg.arrivesAt;
        trace_->emit(ev);
    }
}

std::optional<u64>
OperandNetwork::tryRecv(CoreId me, CoreId from, Cycle now)
{
    if (me >= recvQueues_.size())
        return std::nullopt;
    auto &queue = recvQueues_[me];
    // CAM search: the oldest message from the requested sender. FIFO per
    // (sender, receiver) pair is preserved because we scan in order.
    for (auto mit = queue.begin(); mit != queue.end(); ++mit) {
        if (mit->from != from || mit->isSpawn)
            continue;
        if (mit->arrivesAt > now)
            return std::nullopt; // in flight; keep FIFO order — stall
        u64 value = mit->value;
        const Cycle arrived = mit->arrivesAt;
        queue.erase(mit);
        stats_.add("net.receives");
        if (trace_) {
            TraceEvent ev;
            ev.cycle = now;
            ev.core = me;
            ev.kind = TraceEventKind::NetRecv;
            ev.arg16 = from;
            ev.arg32 = static_cast<u32>(queue.size());
            ev.arg64 = now - arrived;
            trace_->emit(ev);
        }
        return value;
    }
    return std::nullopt;
}

std::optional<u64>
OperandNetwork::trySpawn(CoreId me, Cycle now)
{
    if (me >= recvQueues_.size())
        return std::nullopt;
    auto &queue = recvQueues_[me];
    for (auto mit = queue.begin(); mit != queue.end(); ++mit) {
        if (!mit->isSpawn)
            continue;
        if (mit->arrivesAt > now)
            return std::nullopt;
        u64 value = mit->value;
        const CoreId from = mit->from;
        const Cycle arrived = mit->arrivesAt;
        queue.erase(mit);
        if (trace_) {
            TraceEvent ev;
            ev.cycle = now;
            ev.core = me;
            ev.kind = TraceEventKind::NetRecv;
            ev.arg16 = from;
            ev.arg8 = 1;
            ev.arg32 = static_cast<u32>(queue.size());
            ev.arg64 = now - arrived;
            trace_->emit(ev);
        }
        return value;
    }
    return std::nullopt;
}

bool
OperandNetwork::recvDue(CoreId me, CoreId from, Cycle now) const
{
    if (me >= recvQueues_.size())
        return false;
    for (const Message &msg : recvQueues_[me]) {
        if (msg.from != from || msg.isSpawn)
            continue;
        return msg.arrivesAt <= now;
    }
    return false;
}

bool
OperandNetwork::spawnDue(CoreId me, Cycle now) const
{
    if (me >= recvQueues_.size())
        return false;
    for (const Message &msg : recvQueues_[me]) {
        if (!msg.isSpawn)
            continue;
        return msg.arrivesAt <= now;
    }
    return false;
}

size_t
OperandNetwork::queuedFor(CoreId me) const
{
    return me < recvQueues_.size() ? recvQueues_[me].size() : 0;
}

Cycle
OperandNetwork::nextArrival(Cycle after) const
{
    Cycle best = kNoArrival;
    for (const auto &queue : recvQueues_)
        for (const Message &msg : queue)
            if (msg.arrivesAt > after && msg.arrivesAt < best)
                best = msg.arrivesAt;
    return best;
}

void
OperandNetwork::putDirect(CoreId core, Dir dir, u64 value, Cycle now)
{
    panic_if_not(neighbor(core, dir) != kNoCore,
                 "PUT off the edge of the mesh");
    links_[{core, static_cast<u8>(dir)}] = {value, now};
    stats_.add("net.puts");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = core;
        ev.kind = TraceEventKind::NetPut;
        ev.arg8 = static_cast<u8>(dir);
        trace_->emit(ev);
    }
}

u64
OperandNetwork::getDirect(CoreId me, Dir dir, Cycle now)
{
    const CoreId from = neighbor(me, dir);
    panic_if_not(from != kNoCore, "GET off the edge of the mesh");
    auto it = links_.find({from, static_cast<u8>(opposite(dir))});
    panic_if_not(it != links_.end() && it->second.second == now,
                 "GET with no same-cycle PUT on the link (core ", me,
                 " dir ", dir_name(dir), " cycle ", now,
                 ") — coupled-mode schedule bug");
    stats_.add("net.gets");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = me;
        ev.kind = TraceEventKind::NetGet;
        ev.arg8 = static_cast<u8>(dir);
        trace_->emit(ev);
    }
    return it->second.first;
}

void
OperandNetwork::broadcast(CoreId from, u64 value, Cycle now)
{
    bcast_ = {value, now};
    bcastFrom_ = from;
    stats_.add("net.bcasts");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = from;
        ev.kind = TraceEventKind::NetBcast;
        trace_->emit(ev);
    }
}

u64
OperandNetwork::getBroadcast(CoreId me, Cycle now)
{
    panic_if_not(bcast_ && bcast_->second == now && bcastFrom_ != me,
                 "broadcast GET with no same-cycle BCAST (core ", me,
                 " cycle ", now, ") — coupled-mode schedule bug");
    if (trace_) {
        TraceEvent ev;
        ev.cycle = now;
        ev.core = me;
        ev.kind = TraceEventKind::NetGet;
        ev.arg16 = 1;
        trace_->emit(ev);
    }
    return bcast_->first;
}

} // namespace voltron
