/**
 * @file
 * The Voltron dual-mode scalar operand network.
 *
 * Cores sit on a 2-D mesh. The network supports:
 *
 *  - **Direct mode** (coupled execution): a PUT on one core and a GET on a
 *    neighbouring core issued in the *same cycle* move one register value
 *    across one hop; the value is usable the following cycle (1 cycle/hop).
 *    A BCAST delivers a value to every other core in the coupled group in
 *    one cycle (paired with same-cycle GETs carrying imm==1), modelling
 *    the dedicated branch-condition wire.
 *
 *  - **Queue mode** (decoupled execution): SEND enqueues a routed message;
 *    the matching RECV finds it by sender id in a CAM receive queue and
 *    stalls until it arrives. Latency is 2 cycles + 1 per hop (1 to write
 *    the send queue, 1 per hop, 1 to read the receive queue). Messages
 *    between a given (sender, receiver) pair are delivered FIFO — the
 *    property the compiler's communication-placement discipline relies on.
 *
 * SPAWN is a queue-mode message carrying a start address; idle cores poll
 * for it.
 *
 * **Scalable queue model.** The architectural CAM is *modelled* with
 * per-(sender, receiver, class) indexed FIFOs — one virtual link per
 * pair, in the spirit of Virtual-Link-style MPMC queues — so every
 * queue-mode operation is O(1) instead of an O(messages-to-receiver)
 * scan. Back-pressure, FIFO-per-pair, in-flight stalling, per-class
 * slot reservation, and every observable counter/trace field are
 * bit-identical to the historical scan model, which is kept behind
 * NetworkConfig::legacyScanQueues as the reference for equivalence
 * tests and the bench/mesh_scaling enforced bound.
 */

#ifndef VOLTRON_NETWORK_NETWORK_HH_
#define VOLTRON_NETWORK_NETWORK_HH_

#include <deque>
#include <optional>
#include <vector>

#include "isa/opcode.hh"
#include "support/stats.hh"
#include "support/types.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace voltron {

/** Network configuration. */
struct NetworkConfig
{
    u16 rows = 2;
    u16 cols = 2;
    u32 queueCapacity = 64; //!< per-receiver buffered messages
    u32 queueBaseLatency = 1; //!< send-queue write cost (cycles)
    u32 hopLatency = 1;       //!< per-hop cycles (both modes)

    /**
     * Use the pre-indexed O(messages) CAM-scan queue implementation.
     * Timing, counters, histograms, and trace streams are bit-identical
     * either way (tests assert it); this exists as the reference model
     * for that comparison and as the baseline the mesh_scaling bench
     * measures the indexed model against.
     */
    bool legacyScanQueues = false;
};

/** The operand network. */
class OperandNetwork
{
  public:
    explicit OperandNetwork(const NetworkConfig &config);

    u16 numCores() const { return static_cast<u16>(config_.rows *
                                                   config_.cols); }

    /** Manhattan distance between two cores. */
    u32 hops(CoreId a, CoreId b) const;

    /** Neighbour of @p core in direction @p dir, or kNoCore at the edge. */
    CoreId neighbor(CoreId core, Dir dir) const;

    // --- Queue mode ------------------------------------------------------

    /**
     * True when a SEND (or SPAWN, with @p is_spawn) from @p from to @p to
     * would stall (queue full). Spawns occupy their own per-pair slots:
     * tryRecv can never drain a spawn message, so an in-flight SPAWN must
     * not consume the data-queue capacity a racing SEND needs (at
     * queueCapacity=1 that spurious stall can wedge the pair).
     */
    bool sendWouldStall(CoreId from, CoreId to, bool is_spawn = false) const;

    /** Enqueue a value (SEND executed at @p now). */
    void send(CoreId from, CoreId to, u64 value, Cycle now,
              bool is_spawn = false);

    /**
     * RECV executed at @p now by @p me looking for a message from
     * @p from: pops and returns the oldest arrived message, or nullopt
     * (the core stalls and retries).
     */
    std::optional<u64> tryRecv(CoreId me, CoreId from, Cycle now);

    /** Idle-core poll for a spawn message (any sender). */
    std::optional<u64> trySpawn(CoreId me, Cycle now);

    /**
     * Pure mirror of tryRecv: true iff a tryRecv(me, from, now) would
     * return a value. Follows the same CAM discipline — if the oldest
     * matching message is still in flight the receive stalls even when a
     * younger one has arrived.
     */
    bool recvDue(CoreId me, CoreId from, Cycle now) const;

    /** Pure mirror of trySpawn. */
    bool spawnDue(CoreId me, Cycle now) const;

    /** Messages buffered for @p me (tests/debug). */
    size_t queuedFor(CoreId me) const;

    /**
     * Earliest in-flight arrival strictly after cycle @p after, across
     * every receive queue (spawns included), or kNoArrival when nothing
     * is due. The simulator's idle-cycle fast-forward uses this as a
     * wake-up source.
     */
    Cycle nextArrival(Cycle after) const;

    /** Sentinel returned by nextArrival when no message is in flight. */
    static constexpr Cycle kNoArrival = ~static_cast<Cycle>(0);

    // --- Direct mode -----------------------------------------------------

    /** PUT executed at cycle @p now driving @p core's @p dir link. */
    void putDirect(CoreId core, Dir dir, u64 value, Cycle now);

    /**
     * GET executed at cycle @p now on @p me reading from its @p dir
     * neighbour's opposite link. Panics if no matching same-cycle PUT —
     * that is a compiler scheduling bug.
     */
    u64 getDirect(CoreId me, Dir dir, Cycle now);

    /** BCAST executed at cycle @p now. */
    void broadcast(CoreId from, u64 value, Cycle now);

    /** GET with imm==1 paired with a same-cycle BCAST. */
    u64 getBroadcast(CoreId me, Cycle now);

    const StatSet &stats() const { return stats_; }

    /** Distribution of queue-mode message latencies (send to arrival,
     * cycles), one sample per SEND/SPAWN. */
    const Histogram &hopLatency() const { return hopLatency_; }

    /** Distribution of receiver queue depths observed after each
     * enqueue — the direct occupancy signal for queue-full back-pressure
     * analysis. */
    const Histogram &queueDepth() const { return queueDepth_; }

    /** Emit NetSend/NetRecv/NetPut/NetGet/NetBcast events to @p sink
     * (nullptr disables; purely observational). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    struct Message
    {
        CoreId from;
        u64 value;
        Cycle arrivesAt;
        bool isSpawn;
    };

    /** Direct-mode link latch: kNoArrival marks "never driven". */
    struct LinkLatch
    {
        u64 value = 0;
        Cycle cycle = kNoArrival;
    };

    NetworkConfig config_;

    /**
     * Indexed (default) queue model: one FIFO per virtual link. Data
     * messages live in dataLinks_[to * numCores + from]; spawns keep a
     * per-receiver insertion-order queue (trySpawn pops the oldest
     * *enqueued* spawn across senders — the CAM scan order) with
     * per-pair in-flight counts for O(1) back-pressure. totalQueued_
     * mirrors the receiver's total buffered messages (both classes) for
     * queuedFor, the queue-depth histogram, and the trace fields. All
     * containers are sized up front so queue-mode traffic never
     * reshapes them — the parallel stepper reads recvDue/spawnDue
     * concurrently with other cores' links staying untouched.
     */
    std::vector<std::deque<Message>> dataLinks_;
    std::vector<std::deque<Message>> spawnQueues_;
    std::vector<u32> spawnInFlight_; //!< [to * numCores + from]
    std::vector<u32> totalQueued_;   //!< [to]

    /** Legacy scan model: receive queues indexed by receiver only,
     * CAM-searched message by message (legacyScanQueues == true). */
    std::vector<std::deque<Message>> recvQueues_;

    /** Direct-mode link latches, indexed [core * 4 + dir]. */
    std::vector<LinkLatch> links_;
    /** Broadcast latch: (value, cycle, from). */
    std::optional<std::pair<u64, Cycle>> bcast_;
    CoreId bcastFrom_ = kNoCore;
    StatSet stats_;
    Histogram hopLatency_;
    Histogram queueDepth_;
    TraceSink *trace_ = nullptr;

    u16 rowOf(CoreId c) const { return static_cast<u16>(c / config_.cols); }
    u16 colOf(CoreId c) const { return static_cast<u16>(c % config_.cols); }
    size_t linkIdx(CoreId to, CoreId from) const
    {
        return static_cast<size_t>(to) * numCores() + from;
    }

    void traceRecv(CoreId me, CoreId from, bool is_spawn, Cycle now,
                   Cycle arrived, size_t depth_after);
};

} // namespace voltron

#endif // VOLTRON_NETWORK_NETWORK_HH_
