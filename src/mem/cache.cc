#include "mem/cache.hh"

#include <bit>

namespace voltron {

CacheArray::CacheArray(const CacheGeometry &geom) : geom_(geom)
{
    fatal_if_not(std::has_single_bit(geom.lineBytes),
                 "cache line size must be a power of two");
    fatal_if_not(geom.sizeBytes % (geom.assoc * geom.lineBytes) == 0,
                 "cache size must be a multiple of assoc * line size");
    fatal_if_not(std::has_single_bit(geom.numSets()),
                 "number of cache sets must be a power of two");
    lineMask_ = geom.lineBytes - 1;
    lineShift_ = static_cast<u32>(std::countr_zero(geom.lineBytes));
    setMask_ = geom.numSets() - 1;
    lines_.resize(static_cast<size_t>(geom.numSets()) * geom.assoc);
}

CacheLine *
CacheArray::probe(Addr addr, bool touch)
{
    const u32 set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (u32 way = 0; way < geom_.assoc; ++way) {
        CacheLine &line = lines_[set * geom_.assoc + way];
        if (line.valid && line.tag == tag) {
            if (touch)
                line.lastUse = ++useClock_;
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
CacheArray::peek(Addr addr) const
{
    const u32 set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (u32 way = 0; way < geom_.assoc; ++way) {
        const CacheLine &line = lines_[set * geom_.assoc + way];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

CacheLine *
CacheArray::fill(Addr addr, CacheLine *evicted, Addr *evicted_addr)
{
    panic_if_not(probe(addr, false) == nullptr,
                 "fill of already-present line");
    const u32 set = setOf(addr);
    CacheLine *victim = nullptr;
    for (u32 way = 0; way < geom_.assoc; ++way) {
        CacheLine &line = lines_[set * geom_.assoc + way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (evicted)
        *evicted = *victim;
    if (evicted_addr && victim->valid)
        *evicted_addr = rebuildAddr(set, victim->tag);
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->state = 0;
    victim->lastUse = ++useClock_;
    return victim;
}

bool
CacheArray::invalidate(Addr addr, u8 *old_state)
{
    CacheLine *line = probe(addr, false);
    if (!line)
        return false;
    if (old_state)
        *old_state = line->state;
    line->valid = false;
    return true;
}

void
CacheArray::reset()
{
    for (auto &line : lines_)
        line = CacheLine{};
}

} // namespace voltron
