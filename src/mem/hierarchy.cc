#include "mem/hierarchy.hh"

#include <algorithm>

#include "support/error.hh"

namespace voltron {

const char *
moesi_name(Moesi state)
{
    switch (state) {
      case Moesi::Invalid: return "I";
      case Moesi::Shared: return "S";
      case Moesi::Exclusive: return "E";
      case Moesi::Owned: return "O";
      case Moesi::Modified: return "M";
      default: return "?";
    }
}

MemHierarchy::MemHierarchy(u16 num_cores, const MemConfig &config)
    : config_(config), l2_(config.l2)
{
    fatal_if_not(num_cores >= 1, "need at least one core");
    for (u16 c = 0; c < num_cores; ++c) {
        l1i_.emplace_back(config.l1i);
        l1d_.emplace_back(config.l1d);
    }
    counters_.resize(num_cores);
}

void
MemHierarchy::flushStats() const
{
    auto flush = [this](u64 &counter, std::string name) {
        if (counter != 0) {
            stats_.add(name, counter);
            counter = 0;
        }
    };
    for (size_t c = 0; c < counters_.size(); ++c) {
        const std::string prefix = corePrefix(static_cast<CoreId>(c));
        CoreCounters &k = counters_[c];
        flush(k.l1iFetches, prefix + "l1i.fetches");
        flush(k.l1iHits, prefix + "l1i.hits");
        flush(k.l1iMisses, prefix + "l1i.misses");
        flush(k.l1dReads, prefix + "l1d.reads");
        flush(k.l1dWrites, prefix + "l1d.writes");
        flush(k.l1dHits, prefix + "l1d.hits");
        flush(k.l1dMisses, prefix + "l1d.misses");
        flush(k.l1dUpgrades, prefix + "l1d.upgrades");
        flush(k.l1dCacheToCache, prefix + "l1d.cacheToCache");
        flush(k.l1dEvictions, prefix + "l1d.evictions");
        flush(k.l1dWritebacks, prefix + "l1d.writebacks");
        flush(k.l2Hits, prefix + "l2.hits");
        flush(k.l2Misses, prefix + "l2.misses");
    }
    flush(busWaitCycles_, "bus.waitCycles");
    flush(busTransactions_, "bus.transactions");
    flush(l2Evictions_, "l2.evictions");
}

std::string
MemHierarchy::corePrefix(CoreId core) const
{
    return "core" + std::to_string(core) + ".";
}

void
MemHierarchy::traceMiss(CoreId core, Addr addr, bool is_write,
                        bool is_ifetch, Cycle now,
                        const AccessOutcome &out) const
{
    TraceEvent ev;
    ev.cycle = now;
    ev.core = core;
    ev.kind = TraceEventKind::CacheMiss;
    ev.arg8 = out.cacheToCache ? kMissCacheToCache
                               : (out.l2Miss ? kMissMemory : kMissL2Hit);
    ev.arg16 = static_cast<u16>((is_write ? 1 : 0) | (is_ifetch ? 2 : 0));
    ev.arg32 = out.latency;
    ev.arg64 = addr;
    trace_->emit(ev);
}

u32
MemHierarchy::acquireBus(Cycle now)
{
    const Cycle start = std::max(now, busFreeAt_);
    busFreeAt_ = start + config_.timings.busOccupancy;
    const u32 wait = static_cast<u32>(start - now);
    busWaitCycles_ += wait;
    busTransactions_++;
    return wait;
}

void
MemHierarchy::fillL2(Addr addr)
{
    addr = l2_.lineAddr(addr);
    if (l2_.probe(addr))
        return;
    CacheLine victim;
    Addr victim_addr = 0;
    l2_.fill(addr, &victim, &victim_addr);
    if (victim.valid)
        l2Evictions_++;
}

void
MemHierarchy::fillL1d(CoreId core, Addr addr, Moesi state)
{
    addr = l1d_[core].lineAddr(addr);
    CacheLine victim;
    Addr victim_addr = 0;
    CacheLine *line = l1d_[core].fill(addr, &victim, &victim_addr);
    line->state = static_cast<u8>(state);
    if (victim.valid) {
        const Moesi vs = static_cast<Moesi>(victim.state);
        if (vs == Moesi::Modified || vs == Moesi::Owned) {
            // Dirty writeback to the L2 (occupies the L2, not the
            // requester's critical path in this model).
            fillL2(victim_addr);
            counters_[core].l1dWritebacks++;
        }
        counters_[core].l1dEvictions++;
    }
}

AccessOutcome
MemHierarchy::access(CoreId core, Addr addr, bool is_write, Cycle now)
{
    panic_if_not(core < l1d_.size(), "access from unknown core");
    AccessOutcome out;
    const Addr line_addr = l1d_[core].lineAddr(addr);
    CacheArray &l1 = l1d_[core];
    CoreCounters &counters = counters_[core];
    const MemTimings &t = config_.timings;

    (is_write ? counters.l1dWrites : counters.l1dReads)++;

    CacheLine *line = l1.probe(line_addr);
    if (line) {
        Moesi state = static_cast<Moesi>(line->state);
        if (!is_write) {
            counters.l1dHits++;
            return out;
        }
        if (state == Moesi::Modified || state == Moesi::Exclusive) {
            line->state = static_cast<u8>(Moesi::Modified);
            counters.l1dHits++;
            return out;
        }
        // S or O: upgrade — invalidate every other copy over the bus.
        out.latency = acquireBus(now) + t.upgrade;
        for (size_t peer = 0; peer < l1d_.size(); ++peer) {
            if (peer != core)
                l1d_[peer].invalidate(line_addr);
        }
        line->state = static_cast<u8>(Moesi::Modified);
        counters.l1dUpgrades++;
        return out;
    }

    // L1 miss: one bus transaction; snoop peers, then L2, then memory.
    out.l1Miss = true;
    counters.l1dMisses++;
    out.latency = acquireBus(now);

    // Snoop.
    CoreId supplier = kNoCore;
    bool any_sharer = false;
    for (size_t peer = 0; peer < l1d_.size(); ++peer) {
        if (peer == core)
            continue;
        CacheLine *pl = l1d_[peer].probe(line_addr, false);
        if (!pl)
            continue;
        any_sharer = true;
        const Moesi ps = static_cast<Moesi>(pl->state);
        if (ps == Moesi::Modified || ps == Moesi::Owned ||
            ps == Moesi::Exclusive) {
            supplier = static_cast<CoreId>(peer);
        }
        if (is_write) {
            l1d_[peer].invalidate(line_addr);
        } else {
            // Read snoop: M -> O, E -> S; O/S unchanged.
            if (ps == Moesi::Modified)
                pl->state = static_cast<u8>(Moesi::Owned);
            else if (ps == Moesi::Exclusive)
                pl->state = static_cast<u8>(Moesi::Shared);
        }
    }

    if (supplier != kNoCore) {
        out.cacheToCache = true;
        out.latency += t.cacheToCache;
        counters.l1dCacheToCache++;
        fillL1d(core, line_addr, is_write ? Moesi::Modified : Moesi::Shared);
        if (trace_)
            traceMiss(core, addr, is_write, false, now, out);
        return out;
    }

    if (l2_.probe(line_addr)) {
        out.latency += t.l2Hit;
        counters.l2Hits++;
    } else {
        out.l2Miss = true;
        out.latency += t.memAccess;
        counters.l2Misses++;
        fillL2(line_addr);
    }

    Moesi fill_state;
    if (is_write)
        fill_state = Moesi::Modified;
    else
        fill_state = any_sharer ? Moesi::Shared : Moesi::Exclusive;
    fillL1d(core, line_addr, fill_state);
    if (trace_)
        traceMiss(core, addr, is_write, false, now, out);
    return out;
}

AccessOutcome
MemHierarchy::fetch(CoreId core, Addr addr, Cycle now)
{
    panic_if_not(core < l1i_.size(), "fetch from unknown core");
    AccessOutcome out;
    CacheArray &l1 = l1i_[core];
    const Addr line_addr = l1.lineAddr(addr);
    CoreCounters &counters = counters_[core];
    const MemTimings &t = config_.timings;

    counters.l1iFetches++;
    if (l1.probe(line_addr)) {
        counters.l1iHits++;
        return out;
    }

    out.l1Miss = true;
    counters.l1iMisses++;
    out.latency = acquireBus(now);
    if (l2_.probe(line_addr)) {
        out.latency += t.l2Hit;
        counters.l2Hits++;
    } else {
        out.l2Miss = true;
        out.latency += t.memAccess;
        counters.l2Misses++;
        fillL2(line_addr);
    }
    l1.fill(line_addr);
    if (trace_)
        traceMiss(core, addr, false, true, now, out);
    return out;
}

void
MemHierarchy::reset()
{
    for (auto &cache : l1i_)
        cache.reset();
    for (auto &cache : l1d_)
        cache.reset();
    l2_.reset();
    busFreeAt_ = 0;
}

Moesi
MemHierarchy::l1dState(CoreId core, Addr addr) const
{
    const CacheLine *line = l1d_.at(core).peek(addr);
    return line ? static_cast<Moesi>(line->state) : Moesi::Invalid;
}

bool
MemHierarchy::l1iHit(CoreId core, Addr addr) const
{
    return l1i_.at(core).peek(addr) != nullptr;
}

} // namespace voltron
