/**
 * @file
 * Generic set-associative cache tag array with LRU replacement.
 *
 * Used as the tag/state store of every cache in the system: the timing L1
 * instruction/data caches and shared L2 of the simulator, and the profile
 * cache the interpreter uses to estimate per-load miss rates. Lines carry
 * an opaque state byte so the MOESI protocol can piggyback on the array.
 */

#ifndef VOLTRON_MEM_CACHE_HH_
#define VOLTRON_MEM_CACHE_HH_

#include <vector>

#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/** Cache geometry. */
struct CacheGeometry
{
    u32 sizeBytes = 4096;
    u32 assoc = 2;
    u32 lineBytes = 64;

    u32 numSets() const { return sizeBytes / (assoc * lineBytes); }
};

/** A cache line's bookkeeping. */
struct CacheLine
{
    bool valid = false;
    Addr tag = 0;
    u8 state = 0;   //!< protocol state (opaque to the array)
    u64 lastUse = 0; //!< LRU timestamp
};

/** Set-associative tag array with LRU replacement. */
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }

    /**
     * Probe for @p addr. Returns the line if present (updating LRU when
     * @p touch), else nullptr.
     */
    CacheLine *probe(Addr addr, bool touch = true);
    const CacheLine *peek(Addr addr) const;

    /**
     * Allocate a line for @p addr (which must not be present). Returns
     * the victim line *before* overwriting it via @p evicted (valid flag
     * tells whether a real eviction happened; the evicted line address is
     * written to @p evicted_addr). The returned line has valid=true, the
     * new tag, state 0, and fresh LRU.
     */
    CacheLine *fill(Addr addr, CacheLine *evicted = nullptr,
                    Addr *evicted_addr = nullptr);

    /** Invalidate @p addr if present; returns the prior line state. */
    bool invalidate(Addr addr, u8 *old_state = nullptr);

    /** Invalidate everything. */
    void reset();

    /** Visit every valid line (addr, line). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (u32 set = 0; set < geom_.numSets(); ++set) {
            for (u32 way = 0; way < geom_.assoc; ++way) {
                const CacheLine &line = lines_[set * geom_.assoc + way];
                if (line.valid)
                    fn(rebuildAddr(set, line.tag), line);
            }
        }
    }

  private:
    CacheGeometry geom_;
    Addr lineMask_;
    u32 setMask_;
    u32 lineShift_;
    u64 useClock_ = 0;
    std::vector<CacheLine> lines_;

    u32 setOf(Addr addr) const { return (addr >> lineShift_) & setMask_; }
    Addr tagOf(Addr addr) const { return addr >> lineShift_; }
    Addr
    rebuildAddr(u32 /*set*/, Addr tag) const
    {
        return tag << lineShift_;
    }
};

} // namespace voltron

#endif // VOLTRON_MEM_CACHE_HH_
