/**
 * @file
 * Coherent cache hierarchy: per-core L1 I/D, shared banked L2, MOESI
 * snooping bus, main memory.
 *
 * Matches the paper's machine: private 4 kB 2-way L1 instruction and data
 * caches per core, a shared 128 kB 4-way L2, and bus-based snooping with
 * the MOESI protocol. The hierarchy is a *timing and coherence-state*
 * model: architectural data lives in the shared MemoryImage, so the model
 * tracks tags, states and latencies only (the standard approach for
 * execute-at-issue simulators).
 */

#ifndef VOLTRON_MEM_HIERARCHY_HH_
#define VOLTRON_MEM_HIERARCHY_HH_

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "support/stats.hh"
#include "support/types.hh"
#include "trace/trace.hh"

namespace voltron {

/** MOESI line states (stored in CacheLine::state). */
enum class Moesi : u8 {
    Invalid = 0,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

const char *moesi_name(Moesi state);

/** Latency parameters (cycles). */
struct MemTimings
{
    u32 l2Hit = 10;        //!< L1 miss serviced by the L2
    u32 memAccess = 100;   //!< L1+L2 miss serviced by main memory
    u32 cacheToCache = 8;  //!< L1 miss supplied by a peer L1
    u32 upgrade = 3;       //!< S/O -> M upgrade (invalidation round)
    u32 busOccupancy = 4;  //!< bus cycles held per coherence transaction
};

/** Hierarchy configuration. */
struct MemConfig
{
    CacheGeometry l1i{4096, 2, 64};
    CacheGeometry l1d{4096, 2, 64};
    CacheGeometry l2{131072, 4, 64};
    MemTimings timings;
};

/** Outcome of one access, for stall accounting. */
struct AccessOutcome
{
    u32 latency = 0; //!< extra cycles beyond the op's pipeline latency
    bool l1Miss = false;
    bool l2Miss = false;
    bool cacheToCache = false;
};

/** The multicore memory system. */
class MemHierarchy
{
  public:
    MemHierarchy(u16 num_cores, const MemConfig &config = MemConfig{});

    /** Data access by @p core at @p now. */
    AccessOutcome access(CoreId core, Addr addr, bool is_write, Cycle now);

    /** Instruction fetch by @p core at @p now. */
    AccessOutcome fetch(CoreId core, Addr addr, Cycle now);

    /** Drop every line (used between benchmark repetitions). */
    void reset();

    /** MOESI state of @p addr in @p core's L1D (Invalid if absent). */
    Moesi l1dState(CoreId core, Addr addr) const;

    /**
     * True when a fetch of @p addr by @p core would hit its L1I. Pure
     * (no LRU update, no counters) — the parallel stepper's classifier
     * uses it to predict whether a fetch stays core-local.
     */
    bool l1iHit(CoreId core, Addr addr) const;

    /** Aggregated statistics. */
    const StatSet &stats() const
    {
        flushStats();
        return stats_;
    }
    StatSet &stats()
    {
        flushStats();
        return stats_;
    }

    const MemConfig &config() const { return config_; }

    /** Emit a CacheMiss event for every L1 miss to @p sink (nullptr
     * disables; purely observational). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    /**
     * Hot-path counters. The string-keyed StatSet costs a heap
     * allocation plus a red-black-tree walk per update, which dominated
     * simulation time (the hierarchy is touched for every fetched op).
     * Accesses bump these plain integers instead; stats() folds them
     * into the StatSet on demand, preserving the exposed names.
     */
    struct CoreCounters
    {
        u64 l1iFetches = 0, l1iHits = 0, l1iMisses = 0;
        u64 l1dReads = 0, l1dWrites = 0, l1dHits = 0, l1dMisses = 0;
        u64 l1dUpgrades = 0, l1dCacheToCache = 0;
        u64 l1dEvictions = 0, l1dWritebacks = 0;
        u64 l2Hits = 0, l2Misses = 0;
    };

    MemConfig config_;
    std::vector<CacheArray> l1i_, l1d_;
    CacheArray l2_;
    Cycle busFreeAt_ = 0;
    mutable std::vector<CoreCounters> counters_;
    mutable u64 busWaitCycles_ = 0;
    mutable u64 busTransactions_ = 0;
    mutable u64 l2Evictions_ = 0;
    mutable StatSet stats_;
    TraceSink *trace_ = nullptr;

    /** CacheMiss event for the L1 miss @p out describes. */
    void traceMiss(CoreId core, Addr addr, bool is_write, bool is_ifetch,
                   Cycle now, const AccessOutcome &out) const;

    /** Fold the plain counters into stats_ (add and reset). */
    void flushStats() const;

    /** Acquire the bus at @p now; returns added waiting latency. */
    u32 acquireBus(Cycle now);

    /** Fill @p addr into @p core's L1D, handling the victim writeback. */
    void fillL1d(CoreId core, Addr addr, Moesi state);

    /** Fill @p addr into the L2, handling the victim. */
    void fillL2(Addr addr);

    std::string corePrefix(CoreId core) const;
};

} // namespace voltron

#endif // VOLTRON_MEM_HIERARCHY_HH_
