/**
 * @file
 * Sparse byte-addressable memory image.
 *
 * Shared by the reference interpreter and the multicore simulator (the
 * simulator's caches are timing/coherence-state models; architectural data
 * lives here). Pages are allocated on demand and zero-initialised.
 */

#ifndef VOLTRON_MEM_MEMIMAGE_HH_
#define VOLTRON_MEM_MEMIMAGE_HH_

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "ir/function.hh"
#include "support/error.hh"
#include "support/types.hh"

namespace voltron {

/** Sparse paged memory. */
class MemoryImage
{
  public:
    static constexpr u64 kPageBits = 12;
    static constexpr u64 kPageSize = 1ULL << kPageBits;

    /** Read @p size (1/2/4/8) bytes at @p addr, zero- or sign-extended. */
    u64
    read(Addr addr, u8 size, bool sign = false) const
    {
        u64 raw = 0;
        readBytes(addr, reinterpret_cast<u8 *>(&raw), size);
        if (sign && size < 8) {
            const u64 shift = 64 - 8 * size;
            raw = static_cast<u64>(static_cast<i64>(raw << shift) >> shift);
        }
        return raw;
    }

    /** Write the low @p size bytes of @p value at @p addr. */
    void
    write(Addr addr, u64 value, u8 size)
    {
        writeBytes(addr, reinterpret_cast<const u8 *>(&value), size);
    }

    /** Raw byte copy out of memory (crosses pages). */
    void
    readBytes(Addr addr, u8 *out, u64 len) const
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const u64 chunk = std::min(len, kPageSize - off);
            const Page *page = findPage(addr);
            if (page)
                std::memcpy(out, page->data() + off, chunk);
            else
                std::memset(out, 0, chunk);
            addr += chunk;
            out += chunk;
            len -= chunk;
        }
    }

    /** Raw byte copy into memory (crosses pages). */
    void
    writeBytes(Addr addr, const u8 *in, u64 len)
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const u64 chunk = std::min(len, kPageSize - off);
            Page &page = getPage(addr);
            std::memcpy(page.data() + off, in, chunk);
            addr += chunk;
            in += chunk;
            len -= chunk;
        }
    }

    /** Install a program's data-segment initialisers. */
    void
    loadProgram(const Program &prog)
    {
        for (const DataObject &obj : prog.data) {
            if (!obj.init.empty())
                writeBytes(obj.base, obj.init.data(), obj.init.size());
        }
    }

    /** Number of resident pages (for tests). */
    size_t residentPages() const { return pages_.size(); }

    /**
     * True when a write of @p len bytes at @p addr would land entirely in
     * already-resident pages, i.e. writeBytes would not allocate. The
     * parallel stepper uses this to prove a store is free of structural
     * side effects before running it outside the serial section.
     */
    bool
    writeInPlace(Addr addr, u64 len) const
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const u64 chunk = std::min(len, kPageSize - off);
            if (!findPage(addr))
                return false;
            addr += chunk;
            len -= chunk;
        }
        return true;
    }

  private:
    using Page = std::array<u8, kPageSize>;

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages_.find(addr >> kPageBits);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    Page &
    getPage(Addr addr)
    {
        auto &slot = pages_[addr >> kPageBits];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

} // namespace voltron

#endif // VOLTRON_MEM_MEMIMAGE_HH_
