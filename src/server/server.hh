/**
 * @file
 * voltron-served — the compile-and-simulate daemon.
 *
 * One long-lived process holds the hot state a fleet of short client
 * invocations would otherwise rebuild from scratch: VoltronSystem
 * instances (golden pass + profile per program), the in-process
 * artifact cache levels, and the warm disk tier. Clients connect over
 * a Unix domain socket and exchange one JSON object per line
 * (server/protocol.hh).
 *
 * Request handling dedupes at three levels, checked in order under one
 * lock:
 *
 *   1. response cache — a completed identical request's body is
 *      replayed verbatim ("source":"cached"); nothing recomputes;
 *   2. in-flight map — an identical request already computing makes
 *      this one a follower that sleeps on the leader's condvar and
 *      wakes with the leader's body ("source":"follower");
 *   3. otherwise this request is the leader: it queues the compute on
 *      the work-stealing executor, publishes the body to both maps,
 *      and wakes its followers ("source":"cold").
 *
 * A background thread periodically re-asserts the disk budget
 * (ArtifactCache::enforceBudget), so the tier stays bounded even when
 * other processes publish into the shared directory. The "evict" op
 * drops all three dedup levels plus the in-process cache and shrinks
 * the disk tier to a requested size — after it, an identical request
 * is a true cold miss (the CI smoke test pins this).
 *
 * handleLine() is the whole protocol brain and is callable without any
 * socket, which is how the unit tests drive it.
 */

#ifndef VOLTRON_SERVER_SERVER_HH_
#define VOLTRON_SERVER_SERVER_HH_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/executor.hh"
#include "server/protocol.hh"

namespace voltron {

class VoltronSystem;

/** Daemon knobs. */
struct ServerConfig
{
    std::string socketPath;    //!< AF_UNIX path (start() binds it)
    size_t workers = 2;        //!< executor threads
    u64 cacheMaxBytes = 0;     //!< disk budget override (0 = env/none)
    std::string traceDir = "."; //!< where .vtrace handles are written
    u32 evictIntervalMs = 2000; //!< background budget-sweep cadence
};

/** Monotonic request counters for the stats op. */
struct ServerCounters
{
    u64 requests = 0;      //!< lines parsed (good or bad)
    u64 runs = 0;          //!< run computes actually executed
    u64 responseHits = 0;  //!< served from the response cache
    u64 followerHits = 0;  //!< coalesced onto an in-flight leader
    u64 errors = 0;        //!< error responses sent
    u64 evictOps = 0;      //!< evict requests handled
    u64 sweeps = 0;        //!< background budget sweeps completed
    u64 traceFiles = 0;    //!< .vtrace handles written
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the accept and sweep threads. */
    bool start(std::string *err = nullptr);

    /** Block until a shutdown request (or stop()) lands. */
    void wait();

    /** Stop accepting, close connections, join the threads. */
    void stop();

    /**
     * Handle one request line, return one response line (no newline).
     * The full protocol, socket-free — tests and tools call this
     * directly.
     */
    std::string handleLine(const std::string &line);

    ServerCounters counters() const;
    const ServerConfig &config() const { return config_; }

  private:
    /** One leader computing; followers sleep on cv. */
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::string body;  //!< rendered result object on success
        std::string error; //!< message on failure
    };

    /** Once-built facade per distinct program identity. */
    struct SystemSlot
    {
        std::mutex m;
        std::unique_ptr<VoltronSystem> sys;
        std::string buildError;
    };

    std::string handleRun(const ServerRequest &req);
    std::string handlePing(const ServerRequest &req);
    std::string handleStats(const ServerRequest &req);
    std::string handleEvict(const ServerRequest &req);

    /** The leader's compute: build, run, render the result object. */
    bool computeRun(const ServerRequest &req, std::string &body,
                    std::string &error);

    std::shared_ptr<SystemSlot> slotFor(u64 identity);

    void acceptLoop();
    void serveConnection(int fd);
    void sweepLoop();
    void bumpError();

    ServerConfig config_;
    Executor executor_;

    mutable std::mutex mutex_; //!< dedup maps + counters
    std::unordered_map<u64, std::string> responseCache_;
    std::unordered_map<u64, std::shared_ptr<Inflight>> inflight_;
    ServerCounters counters_;

    std::mutex systemsMutex_;
    std::unordered_map<u64, std::shared_ptr<SystemSlot>> systems_;

    std::mutex lifecycleMutex_;
    std::condition_variable lifecycleCv_;
    bool stopping_ = false;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::thread sweepThread_;
    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;
};

} // namespace voltron

#endif // VOLTRON_SERVER_SERVER_HH_
