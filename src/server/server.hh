/**
 * @file
 * voltron-served — the compile-and-simulate daemon.
 *
 * One long-lived process holds the hot state a fleet of short client
 * invocations would otherwise rebuild from scratch: VoltronSystem
 * instances (golden pass + profile per program), the in-process
 * artifact cache levels, and the warm disk tier. Clients connect over
 * a Unix domain socket and exchange one JSON object per line
 * (server/protocol.hh).
 *
 * Request handling dedupes at three levels, checked in order under one
 * lock:
 *
 *   1. response cache — a completed identical request's body is
 *      replayed verbatim ("source":"cached"); nothing recomputes; the
 *      cache is LRU-bounded at config.maxResponses entries, and an
 *      evicted entry simply recomputes cold;
 *   2. in-flight map — an identical request already computing makes
 *      this one a follower that sleeps on the leader's condvar and
 *      wakes with the leader's body ("source":"follower");
 *   3. otherwise this request is the leader: it queues the compute on
 *      the work-stealing executor, publishes the body to both maps,
 *      and wakes its followers ("source":"cold").
 *
 * Telemetry (this PR): every request gets a monotonically-increasing
 * id and a TimelineRecorder whose phase spans — accept, parse,
 * classify, queue-wait, cache-probe, golden-run, compile, simulate,
 * serialize, reply — tile its total wall time (server/timeline.hh; the
 * deep phases are marked by the core layers through the thread-local
 * PhaseProbe). Completed run timelines feed per-phase latency
 * histograms (the "stats" op exports server.phase.<name>.p50/p95/p99),
 * the worst-N + recent-errors SlowLog (the "slowlog" op), and — with
 * the request's "timing" flag — come back embedded in the response. A
 * background snapshotter samples the full server+cache counter
 * namespace every config.statsIntervalMs into a fixed ring of
 * totals+deltas; the "watch" op streams those snapshots as line-JSON
 * to the client (voltron-servectl top renders them live).
 *
 * A background thread periodically re-asserts the disk budget
 * (ArtifactCache::enforceBudget), so the tier stays bounded even when
 * other processes publish into the shared directory. The "evict" op
 * drops all three dedup levels plus the in-process cache and shrinks
 * the disk tier to a requested size — after it, an identical request
 * is a true cold miss (the CI smoke test pins this).
 *
 * handleLine() is the whole protocol brain and is callable without any
 * socket, which is how the unit tests drive it.
 */

#ifndef VOLTRON_SERVER_SERVER_HH_
#define VOLTRON_SERVER_SERVER_HH_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/executor.hh"
#include "server/protocol.hh"
#include "server/response_cache.hh"
#include "server/slowlog.hh"
#include "server/timeline.hh"
#include "trace/metrics.hh"

namespace voltron {

class VoltronSystem;

/** Daemon knobs. */
struct ServerConfig
{
    std::string socketPath;    //!< AF_UNIX path (start() binds it)
    size_t workers = 2;        //!< executor threads
    u64 cacheMaxBytes = 0;     //!< disk budget override (0 = env/none)
    std::string traceDir = "."; //!< where .vtrace handles are written
    u32 evictIntervalMs = 2000; //!< background budget-sweep cadence
    size_t maxResponses = 4096; //!< response-cache entry cap (LRU)
    u32 statsIntervalMs = 1000; //!< stats-plane sampling cadence
    size_t slowlogWorst = 32;   //!< slowlog worst-N compartment size
    size_t slowlogErrors = 32;  //!< slowlog recent-error ring size
};

/** Monotonic request counters for the stats op. */
struct ServerCounters
{
    u64 requests = 0;      //!< lines parsed (good or bad)
    u64 runs = 0;          //!< run computes actually executed
    u64 responseHits = 0;  //!< served from the response cache
    u64 followerHits = 0;  //!< coalesced onto an in-flight leader
    u64 errors = 0;        //!< error responses sent
    u64 evictOps = 0;      //!< evict requests handled
    u64 sweeps = 0;        //!< background budget sweeps completed
    u64 traceFiles = 0;    //!< .vtrace handles written
    u64 slowlogOps = 0;    //!< slowlog requests handled
    u64 watchOps = 0;      //!< watch requests handled
    u64 watchLines = 0;    //!< snapshot lines streamed to watchers
    u64 snapshots = 0;     //!< stats-plane samples taken
};

/** One stats-plane sample: the full counter namespace at an instant,
 * plus the (saturating) delta against the previous sample. */
struct StatsSnapshot
{
    u64 seq = 0;
    u64 tUs = 0;       //!< steady us since server construction
    u64 wallUs = 0;    //!< epoch us
    u64 intervalUs = 0; //!< tUs - previous sample's tUs (0 for first)
    std::map<std::string, u64> totals;
    std::map<std::string, u64> deltas;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the accept, sweep, and stats threads. */
    bool start(std::string *err = nullptr);

    /** Block until a shutdown request (or stop()) lands. */
    void wait();

    /** Stop accepting, close connections, join the threads. */
    void stop();

    /** Receiver for a streaming op's intermediate response lines. */
    using LineSink = std::function<bool(const std::string &)>;

    /**
     * Handle one request line, return one response line (no newline).
     * The full protocol, socket-free — tests and tools call this
     * directly. A streaming op ("watch") sends all lines but its last
     * through @p sink; with no sink it degrades to one snapshot.
     */
    std::string handleLine(const std::string &line);
    std::string handleLine(const std::string &line, const LineSink &sink);

    /** Take one stats-plane sample right now (also what the background
     * snapshotter calls each tick). */
    StatsSnapshot sampleStatsNow();

    ServerCounters counters() const;
    const ServerConfig &config() const { return config_; }
    const SlowLog &slowlog() const { return slowlog_; }

  private:
    /** One leader computing; followers sleep on cv. */
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::string body;  //!< rendered result object on success
        std::string error; //!< message on failure
    };

    /** Once-built facade per distinct program identity. */
    struct SystemSlot
    {
        std::mutex m;
        std::unique_ptr<VoltronSystem> sys;
        std::string buildError;
    };

    /** Route one parsed line; phase marks land on @p rec. */
    std::string dispatchLine(const std::string &line,
                             TimelineRecorder &rec, const LineSink &sink);

    std::string handleRun(const ServerRequest &req, TimelineRecorder &rec);
    std::string handlePing(const ServerRequest &req);
    std::string handleStats(const ServerRequest &req);
    std::string handleEvict(const ServerRequest &req);
    std::string handleSlowlog(const ServerRequest &req);
    std::string handleWatch(const ServerRequest &req,
                            const LineSink &sink);

    /** The leader's compute: build, run, render the result object. */
    bool computeRun(const ServerRequest &req, TimelineRecorder &rec,
                    std::string &body, std::string &error);

    /** Fold every server.*, cache.*, and executor counter plus the
     * phase histograms into @p reg (the stats op and the snapshotter
     * share this). */
    void collectStats(MetricsRegistry &reg);

    /** Close @p rec, feed histograms + slowlog, emit the request log
     * line. Call exactly once per request, after the reply mark. */
    void finishRequest(TimelineRecorder &rec);

    /** Render one snapshot as a complete "watch" response line. */
    static std::string renderSnapshot(const std::string &id,
                                      const StatsSnapshot &snap);

    std::shared_ptr<SystemSlot> slotFor(u64 identity);

    void acceptLoop();
    void serveConnection(int fd);
    void sweepLoop();
    void statsLoop();
    void requestStop();
    void bumpError();

    ServerConfig config_;
    Executor executor_;
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<u64> nextRequestId_{1};

    mutable std::mutex mutex_; //!< dedup maps + counters
    ResponseCache responseCache_;
    std::unordered_map<u64, std::shared_ptr<Inflight>> inflight_;
    ServerCounters counters_;

    std::mutex systemsMutex_;
    std::unordered_map<u64, std::shared_ptr<SystemSlot>> systems_;

    /** Per-phase + total latency histograms over completed runs. */
    std::mutex telemetryMutex_;
    std::array<Histogram, kNumPhases> phaseHist_;
    Histogram totalHist_;
    SlowLog slowlog_;

    /** Stats-plane ring (snapshotter output, watch input). */
    static constexpr size_t kStatsRingCapacity = 128;
    std::mutex snapMutex_;
    std::condition_variable snapCv_;
    std::deque<StatsSnapshot> snapRing_;
    u64 snapSeq_ = 0;
    std::map<std::string, u64> prevTotals_;
    u64 prevTUs_ = 0;

    std::mutex lifecycleMutex_;
    std::condition_variable lifecycleCv_;
    bool stopping_ = false;
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> stopLogged_{false};

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::thread sweepThread_;
    std::thread statsThread_;
    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;
};

} // namespace voltron

#endif // VOLTRON_SERVER_SERVER_HH_
