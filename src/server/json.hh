/**
 * @file
 * Minimal JSON for the server's line-delimited protocol.
 *
 * A deliberately small recursive-descent parser and a value tree —
 * objects, arrays, strings, numbers, booleans, null — sized for
 * one-line requests, not documents. Numbers keep their raw source text
 * so u64 keys (content hashes, byte budgets) round-trip without a
 * double's 53-bit mantissa silently truncating them; asU64/asI64/asF64
 * convert on demand. Escapes cover the JSON set (\uXXXX parses to
 * UTF-8 for the BMP; writing escapes control characters numerically).
 *
 * Writing is string-building via JsonWriter, which tracks commas and
 * nesting so handlers can stream a response object field by field.
 */

#ifndef VOLTRON_SERVER_JSON_HH_
#define VOLTRON_SERVER_JSON_HH_

#include <map>
#include <string>
#include <vector>

#include "support/types.hh"

namespace voltron {

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return flag_; }
    /** String payload (String), or the raw number text (Number). */
    const std::string &text() const { return text_; }

    u64 asU64(u64 fallback = 0) const;
    i64 asI64(i64 fallback = 0) const;
    double asF64(double fallback = 0.0) const;

    const std::vector<JsonValue> &items() const { return items_; }
    const std::map<std::string, JsonValue> &fields() const
    {
        return fields_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Convenience member accessors with fallbacks. */
    std::string str(const std::string &key,
                    const std::string &fallback = "") const;
    u64 u64At(const std::string &key, u64 fallback = 0) const;
    double f64At(const std::string &key, double fallback = 0.0) const;
    bool boolAt(const std::string &key, bool fallback = false) const;

    /**
     * Parse @p text into @p out. False on any syntax error, with a
     * position-annotated message in @p err (when non-null). Trailing
     * non-whitespace after the value is an error: one line, one value.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string *err = nullptr);

  private:
    friend class JsonParser;
    Kind kind_ = Kind::Null;
    bool flag_ = false;
    std::string text_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> fields_;
};

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string json_escape(const std::string &s);

/** Comma-and-nesting-tracking JSON emitter. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a keyed member inside an object (then call a value). */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(u64 v);
    JsonWriter &value(i64 v);
    JsonWriter &value(int v) { return value(static_cast<i64>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();
    /** Splice @p json in verbatim (a pre-rendered subobject). */
    JsonWriter &raw(const std::string &json);

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    const std::string &str() const { return out_; }

  private:
    void separate();
    std::string out_;
    std::vector<bool> needComma_;
};

} // namespace voltron

#endif // VOLTRON_SERVER_JSON_HH_
