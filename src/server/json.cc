#include "server/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace voltron {

u64
JsonValue::asU64(u64 fallback) const
{
    if (kind_ != Kind::Number && kind_ != Kind::String)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const u64 v = std::strtoull(text_.c_str(), &end, 10);
    if (end == text_.c_str() || errno != 0)
        return fallback;
    return v;
}

i64
JsonValue::asI64(i64 fallback) const
{
    if (kind_ != Kind::Number && kind_ != Kind::String)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const i64 v = std::strtoll(text_.c_str(), &end, 10);
    if (end == text_.c_str() || errno != 0)
        return fallback;
    return v;
}

double
JsonValue::asF64(double fallback) const
{
    if (kind_ != Kind::Number && kind_ != Kind::String)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(text_.c_str(), &end);
    if (end == text_.c_str())
        return fallback;
    return v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = fields_.find(key);
    return it == fields_.end() ? nullptr : &it->second;
}

std::string
JsonValue::str(const std::string &key, const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->text() : fallback;
}

u64
JsonValue::u64At(const std::string &key, u64 fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asU64(fallback) : fallback;
}

double
JsonValue::f64At(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asF64(fallback) : fallback;
}

bool
JsonValue::boolAt(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean() : fallback;
}

/** The recursive-descent parser. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    run(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    const std::string &text_;
    std::string *err_;
    size_t pos_ = 0;
    int depth_ = 0;
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (err_)
            *err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("bad literal, expected ") + word);
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (depth_ >= kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.text_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.flag_ = true;
            return literal("true", 4);
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.flag_ = false;
            return literal("false", 5);
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return literal("null", 4);
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Object;
        ++pos_; // '{'
        ++depth_;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string k;
            if (!parseString(k))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.fields_[k] = std::move(v); // duplicate keys: last wins
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Array;
        ++pos_; // '['
        ++depth_;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items_.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size())
                return fail("dangling escape");
            const char e = text_[pos_ + 1];
            pos_ += 2;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                u32 cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + i];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<u32>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<u32>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<u32>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                pos_ += 4;
                // BMP-only UTF-8 encoding; surrogates pass through as
                // replacement-free raw code points (the protocol never
                // carries them).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            return fail("bad number");
        out.kind_ = JsonValue::Kind::Number;
        out.text_ = text_.substr(start, pos_ - start);
        return true;
    }
};

bool
JsonValue::parse(const std::string &text, JsonValue &out, std::string *err)
{
    out = JsonValue();
    return JsonParser(text, err).run(out);
}

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_.push_back(',');
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_.push_back('{');
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_.push_back('}');
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_.push_back('[');
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_.push_back(']');
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out_.push_back('"');
    out_ += json_escape(k);
    out_ += "\":";
    // The upcoming value must not emit another comma.
    if (!needComma_.empty())
        needComma_.back() = false;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    separate();
    out_.push_back('"');
    out_ += json_escape(s);
    out_.push_back('"');
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(u64 v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(i64 v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    out_ += json;
    return *this;
}

} // namespace voltron
