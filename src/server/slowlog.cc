#include "server/slowlog.hh"

#include <algorithm>

namespace voltron {

void
SlowLog::record(const RequestTimeline &timeline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (timeline.error) {
        errors_.push_front(timeline);
        while (errors_.size() > errorCapacity_)
            errors_.pop_back();
    }
    if (worstCapacity_ == 0)
        return;
    if (worst_.size() < worstCapacity_) {
        worst_.push_back(timeline);
        ++admitted_;
        return;
    }
    auto fastest = std::min_element(
        worst_.begin(), worst_.end(),
        [](const RequestTimeline &a, const RequestTimeline &b) {
            return a.totalUs < b.totalUs;
        });
    if (timeline.totalUs > fastest->totalUs) {
        *fastest = timeline;
        ++admitted_;
    }
}

std::vector<RequestTimeline>
SlowLog::worst() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RequestTimeline> out = worst_;
    std::sort(out.begin(), out.end(),
              [](const RequestTimeline &a, const RequestTimeline &b) {
                  return a.totalUs > b.totalUs;
              });
    return out;
}

std::vector<RequestTimeline>
SlowLog::errors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {errors_.begin(), errors_.end()};
}

void
SlowLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    worst_.clear();
    errors_.clear();
}

u64
SlowLog::admitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

} // namespace voltron
