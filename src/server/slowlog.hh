/**
 * @file
 * SlowLog — the daemon's bounded ring of requests worth a second look.
 *
 * Two compartments, both fixed-size so an unattended daemon can never
 * grow without bound:
 *
 *  - worst-N by total latency: a request is admitted when it is slower
 *    than the current N-th worst (or the compartment has room) and
 *    displaces the fastest member. The compartment converges on the
 *    daemon's all-time worst offenders, which is what you want on the
 *    3 a.m. page — a snapshot-in-time stats counter can't tell you
 *    *which* request blew the p99.
 *  - recent errors: a plain ring of the last M failed requests, every
 *    error always admitted (errors are rare and all interesting).
 *
 * Retrieval is the "slowlog" op; each entry is the request's full
 * RequestTimeline, so the response shows exactly which phase ate the
 * time. Internally synchronized — record() is called from every
 * connection thread.
 */

#ifndef VOLTRON_SERVER_SLOWLOG_HH_
#define VOLTRON_SERVER_SLOWLOG_HH_

#include <deque>
#include <mutex>
#include <vector>

#include "server/timeline.hh"

namespace voltron {

class SlowLog
{
  public:
    explicit SlowLog(size_t worstCapacity = 32,
                     size_t errorCapacity = 32)
        : worstCapacity_(worstCapacity), errorCapacity_(errorCapacity)
    {
    }

    /** Consider @p timeline for both compartments. */
    void record(const RequestTimeline &timeline);

    /** Worst-by-latency entries, slowest first. */
    std::vector<RequestTimeline> worst() const;

    /** Recent errors, newest first. */
    std::vector<RequestTimeline> errors() const;

    /** Drop everything (the evict op clears telemetry too). */
    void clear();

    size_t worstCapacity() const { return worstCapacity_; }
    size_t errorCapacity() const { return errorCapacity_; }

    /** Total record() calls admitted into the worst compartment. */
    u64 admitted() const;

  private:
    const size_t worstCapacity_;
    const size_t errorCapacity_;
    mutable std::mutex mutex_;
    std::vector<RequestTimeline> worst_; //!< unsorted; sorted on read
    std::deque<RequestTimeline> errors_; //!< newest at front
    u64 admitted_ = 0;
};

} // namespace voltron

#endif // VOLTRON_SERVER_SLOWLOG_HH_
