#include "server/executor.hh"

#include "support/log.hh"

namespace voltron {

Executor::Executor(size_t workers)
{
    if (workers == 0)
        workers = 1;
    queues_.resize(workers);
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

Executor::~Executor()
{
    stop();
}

void
Executor::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!stopping_) {
            ++stats_.submitted;
            ++pending_;
            queues_[nextQueue_].tasks.push_back(std::move(task));
            nextQueue_ = (nextQueue_ + 1) % queues_.size();
            lock.unlock();
            cv_.notify_one();
            return;
        }
        ++stats_.submitted;
        ++stats_.inline_;
    }
    // Pool drained: run on the caller so no request is ever dropped.
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.executed;
}

void
Executor::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

ExecutorStats
Executor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

bool
Executor::takeOwn(size_t self, std::function<void()> &task)
{
    Queue &q = queues_[self];
    if (q.tasks.empty())
        return false;
    task = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool
Executor::stealOther(size_t self, std::function<void()> &task)
{
    for (size_t i = 1; i < queues_.size(); ++i) {
        Queue &q = queues_[(self + i) % queues_.size()];
        if (q.tasks.empty())
            continue;
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
        ++stats_.stolen;
        return true;
    }
    return false;
}

void
Executor::workerLoop(size_t self)
{
    log_debug("server.executor", "worker start",
              {{"worker", static_cast<u64>(self)}});
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return stopping_ || pending_ > 0;
            });
            if (!takeOwn(self, task) && !stealOther(self, task)) {
                if (stopping_) {
                    lock.unlock();
                    log_debug("server.executor", "worker exit",
                              {{"worker", static_cast<u64>(self)}});
                    return;
                }
                continue;
            }
            --pending_;
        }
        task();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.executed;
    }
}

} // namespace voltron
