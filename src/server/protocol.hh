/**
 * @file
 * The voltron-served wire protocol: one JSON object per line.
 *
 * Requests name an op ("run", "ping", "stats", "evict", "shutdown",
 * "slowlog", "watch") and, for run, a program source — a suite
 * benchmark name, a fuzz generator seed, or a hex-encoded canonical
 * Program serialization — plus compile options and response flags
 * (trace, metrics, timing). Responses echo the client's "id" and carry
 * "status": "ok" or "error". "watch" is the one streaming op: the
 * daemon sends "count" snapshot lines (each a complete response
 * object), one per stats-plane sampling tick.
 *
 * A request's identity for deduplication is contentHash(): the FNV-1a
 * mix of the program identity (which source, and its parameters — all
 * generators are deterministic, so the descriptor IS the program),
 * the CompileOptions hash (which already covers the resolved mesh
 * shape), and the trace flag, since a traced run produces an artifact
 * an untraced one does not. Two requests with equal content hashes are
 * answerable by one compile+simulate.
 */

#ifndef VOLTRON_SERVER_PROTOCOL_HH_
#define VOLTRON_SERVER_PROTOCOL_HH_

#include <optional>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "server/json.hh"

namespace voltron {

/** Program source for a run request (exactly one is set). */
enum class ProgramSource : u8 { None, Benchmark, Seed, ProgramHex };

/** One parsed request line. */
struct ServerRequest
{
    std::string op;
    std::string id; //!< client correlation tag, echoed back verbatim

    ProgramSource source = ProgramSource::None;
    std::string benchmark; //!< suite benchmark name
    u64 targetOps = 0;     //!< benchmark scale (0 = suite default)
    u64 seed = 0;          //!< fuzz generator seed
    std::string programHex; //!< hex of canonical Program bytes

    CompileOptions options;
    bool trace = false;   //!< run under a sink, write a .vtrace handle
    bool metrics = false; //!< embed the MetricsRegistry JSON
    bool timing = false;  //!< attach the request's phase timeline

    u64 evictMaxBytes = 0; //!< evict op: disk target (0 = clear all)
    u64 watchCount = 1;    //!< watch op: snapshots to stream

    /**
     * Parse one line into @p out. False with a message in @p err on
     * malformed JSON, an unknown op/strategy, or a run request whose
     * program source is missing or ambiguous.
     */
    static bool parse(const std::string &line, ServerRequest &out,
                      std::string *err);

    /** Identity of the program alone (ignores options and flags). */
    u64 programIdentityHash() const;

    /** Full dedup key: program + options + trace. */
    u64 contentHash() const;
};

/** Lowercase hex of @p bytes. */
std::string hex_encode(const std::vector<u8> &bytes);

/** Decode lowercase/uppercase hex; false on odd length or bad digit. */
bool hex_decode(const std::string &hex, std::vector<u8> &out);

/** Parse a strategy by its strategy_name(); false on unknown. */
bool parse_strategy(const std::string &name, Strategy &out);

} // namespace voltron

#endif // VOLTRON_SERVER_PROTOCOL_HH_
