/**
 * @file
 * Blocking line-oriented client for voltron-served.
 *
 * One connection, one request/response pair at a time: send a JSON
 * line, read the JSON line back. The bench harness runs one Client per
 * closed-loop worker thread; the ctl tool runs one for its single
 * command. Not thread-safe — share nothing, one Client per thread.
 */

#ifndef VOLTRON_SERVER_CLIENT_HH_
#define VOLTRON_SERVER_CLIENT_HH_

#include <string>

namespace voltron {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon at @p socket_path. */
    bool connect(const std::string &socket_path, std::string *err = nullptr);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Send @p line (newline appended) and block for the response line
     * (newline stripped). False on any I/O failure or EOF, after which
     * the connection is closed.
     */
    bool request(const std::string &line, std::string &response,
                 std::string *err = nullptr);

    /**
     * Block for the next response line without sending anything. The
     * streaming "watch" op answers one request with several lines;
     * request() returns the first and readLine() fetches the rest.
     */
    bool readLine(std::string &response, std::string *err = nullptr);

  private:
    int fd_ = -1;
    std::string buffer_; //!< bytes read past the last response line
};

} // namespace voltron

#endif // VOLTRON_SERVER_CLIENT_HH_
