#include "server/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <sstream>

#include "core/artifact_cache.hh"
#include "core/voltron.hh"
#include "fuzz/generator.hh"
#include "ir/serialize.hh"
#include "ir/verifier.hh"
#include "support/log.hh"
#include "support/phase.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace voltron {

namespace {

std::string
hex_u64(u64 v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
render_error(const std::string &id, const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    if (!id.empty())
        w.field("id", id);
    w.field("status", "error");
    w.field("error", message);
    w.endObject();
    return w.str();
}

std::string
render_ok(const std::string &id, const std::string &op,
          const std::string &source, u64 elapsed_us,
          const std::string &result_object,
          const std::string &timing_object = std::string())
{
    JsonWriter w;
    w.beginObject();
    if (!id.empty())
        w.field("id", id);
    w.field("status", "ok");
    w.field("op", op);
    if (!source.empty())
        w.field("source", source);
    w.field("elapsedUs", elapsed_us);
    if (!result_object.empty()) {
        w.key("result");
        w.raw(result_object);
    }
    if (!timing_object.empty()) {
        w.key("timing");
        w.raw(timing_object);
    }
    w.endObject();
    return w.str();
}

/** The "timing" object for a response, or "" when not requested. The
 * snapshot is taken mid-serialize — the reply span cannot be in the
 * payload that precedes it; histograms and the slowlog get the full
 * timeline from finish(). */
std::string
timing_json(const ServerRequest &req, const TimelineRecorder &rec)
{
    if (!req.timing)
        return {};
    JsonWriter w;
    rec.snapshot().writeJson(w);
    return w.str();
}

/**
 * MetricsRegistry::writeJson pretty-prints with newlines; the wire
 * protocol is one line per message, so embedded registries must be
 * flattened. Counter names and values never contain whitespace, so
 * stripping newlines and their indent is safe.
 */
std::string
compact_json(const std::string &pretty)
{
    std::string out;
    out.reserve(pretty.size());
    size_t i = 0;
    while (i < pretty.size()) {
        const char c = pretty[i];
        if (c == '\n' || c == '\r') {
            ++i;
            while (i < pretty.size() && pretty[i] == ' ')
                ++i;
            continue;
        }
        out.push_back(c);
        ++i;
    }
    return out;
}

u64
elapsed_us_since(std::chrono::steady_clock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

u64
wall_us_now()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Write all of @p data (plus nothing else) to @p fd; false when the
 * peer is gone. MSG_NOSIGNAL: a vanished client is a closed connection,
 * not a fatal SIGPIPE. */
bool
send_all(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t w = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (w <= 0)
            return false;
        sent += static_cast<size_t>(w);
    }
    return true;
}

/** Build the program a run request describes; false with a message on
 * a source that cannot produce one. */
bool
build_request_program(const ServerRequest &req, Program &out,
                      std::string &err)
{
    switch (req.source) {
    case ProgramSource::Benchmark: {
        const std::vector<std::string> &names = benchmark_names();
        bool known = false;
        for (const std::string &n : names)
            known = known || n == req.benchmark;
        if (!known) {
            err = "unknown benchmark '" + req.benchmark + "'";
            return false;
        }
        SuiteScale scale;
        if (req.targetOps != 0)
            scale.targetOps = req.targetOps;
        out = build_benchmark(req.benchmark, scale);
        return true;
    }
    case ProgramSource::Seed:
        out = generate_fuzz_program(req.seed);
        return true;
    case ProgramSource::ProgramHex: {
        std::vector<u8> bytes;
        if (!hex_decode(req.programHex, bytes)) {
            err = "program is not valid hex";
            return false;
        }
        ByteReader r(bytes);
        Program prog;
        if (!deserialize(r, prog) || !r.atEnd()) {
            err = "program bytes do not deserialize";
            return false;
        }
        VerifyResult vr = verify_program(prog);
        if (!vr.ok()) {
            err = "program fails verification: " + vr.joined();
            return false;
        }
        out = std::move(prog);
        return true;
    }
    case ProgramSource::None:
        break;
    }
    err = "run request has no program source";
    return false;
}

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), executor_(config_.workers),
      epoch_(std::chrono::steady_clock::now()),
      responseCache_(config_.maxResponses),
      slowlog_(config_.slowlogWorst, config_.slowlogErrors)
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    if (config_.cacheMaxBytes != 0)
        ArtifactCache::instance().setDiskBudget(config_.cacheMaxBytes);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.empty() ||
        config_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path empty or too long";
        log_error("server", "socket path empty or too long",
                  {{"path", config_.socketPath}});
        return false;
    }
    std::memcpy(addr.sun_path, config_.socketPath.c_str(),
                config_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        log_error("server", "socket() failed",
                  {{"errno", std::strerror(errno)}});
        return false;
    }
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (err)
            *err = std::string("bind/listen: ") + std::strerror(errno);
        log_error("server", "bind/listen failed",
                  {{"path", config_.socketPath},
                   {"errno", std::strerror(errno)}});
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    acceptThread_ = std::thread([this] { acceptLoop(); });
    sweepThread_ = std::thread([this] { sweepLoop(); });
    if (config_.statsIntervalMs != 0)
        statsThread_ = std::thread([this] { statsLoop(); });
    log_info("server", "listening",
             {{"socket", config_.socketPath},
              {"workers", static_cast<u64>(config_.workers)},
              {"maxResponses", static_cast<u64>(config_.maxResponses)},
              {"statsIntervalMs",
               static_cast<u64>(config_.statsIntervalMs)}});
    return true;
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(lifecycleMutex_);
    lifecycleCv_.wait(lock, [&] { return stopping_; });
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMutex_);
        stopping_ = true;
    }
    stopRequested_.store(true);
    lifecycleCv_.notify_all();
    snapCv_.notify_all(); // wake streaming watchers
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
}

void
Server::stop()
{
    requestStop();

    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(config_.socketPath.c_str());
    }

    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        conns.swap(connThreads_);
    }
    // Join without connMutex_ held: an exiting connection thread takes
    // it to deregister its fd.
    for (std::thread &t : conns)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::close(fd);
        connFds_.clear();
    }

    if (sweepThread_.joinable())
        sweepThread_.join();
    if (statsThread_.joinable())
        statsThread_.join();
    executor_.stop();

    // stop() runs again from the destructor after an explicit stop;
    // the summary line should appear once.
    const ServerCounters c = counters();
    if (c.requests != 0 && !stopLogged_.exchange(true))
        log_info("server", "stopped",
                 {{"requests", c.requests},
                  {"runs", c.runs},
                  {"errors", c.errors}});
}

ServerCounters
Server::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
Server::bumpError()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
}

std::string
Server::handleLine(const std::string &line)
{
    return handleLine(line, LineSink());
}

std::string
Server::handleLine(const std::string &line, const LineSink &sink)
{
    TimelineRecorder rec(epoch_, Phase::Accept);
    const std::string response = dispatchLine(line, rec, sink);
    rec.mark(Phase::Reply);
    finishRequest(rec);
    return response;
}

std::string
Server::dispatchLine(const std::string &line, TimelineRecorder &rec,
                     const LineSink &sink)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.requests;
    }
    rec.meta().requestId = nextRequestId_.fetch_add(1);
    rec.mark(Phase::Parse);

    ServerRequest req;
    std::string err;
    if (!ServerRequest::parse(line, req, &err)) {
        bumpError();
        rec.meta().op = "?";
        rec.meta().error = true;
        rec.meta().errorMessage = err;
        rec.mark(Phase::Serialize);
        return render_error("", err);
    }
    rec.meta().op = req.op;
    rec.meta().id = req.id;

    if (req.op == "run") {
        rec.meta().contentHash = req.contentHash();
        return handleRun(req, rec);
    }

    // Non-run ops have no queue/compute pipeline; everything after the
    // parse is building the response.
    rec.mark(Phase::Serialize);
    if (req.op == "ping")
        return handlePing(req);
    if (req.op == "stats")
        return handleStats(req);
    if (req.op == "evict")
        return handleEvict(req);
    if (req.op == "slowlog")
        return handleSlowlog(req);
    if (req.op == "watch")
        return handleWatch(req, sink);

    // shutdown: acknowledge, then let wait() return so the daemon's
    // main thread tears everything down (a connection thread cannot
    // join itself).
    log_info("server", "shutdown requested", {{"id", req.id}});
    requestStop();
    return render_ok(req.id, "shutdown", "", 0, "");
}

std::string
Server::handlePing(const ServerRequest &req)
{
    JsonWriter w;
    w.beginObject();
    w.field("workers", static_cast<u64>(executor_.workers()));
    w.field("socket", config_.socketPath);
    w.endObject();
    return render_ok(req.id, "ping", "", 0, w.str());
}

void
Server::collectStats(MetricsRegistry &reg)
{
    collect_cache_metrics(reg);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        reg.set("server.requests", counters_.requests);
        reg.set("server.runs", counters_.runs);
        reg.set("server.responseHits", counters_.responseHits);
        reg.set("server.followerHits", counters_.followerHits);
        reg.set("server.errors", counters_.errors);
        reg.set("server.evictOps", counters_.evictOps);
        reg.set("server.sweeps", counters_.sweeps);
        reg.set("server.traceFiles", counters_.traceFiles);
        reg.set("server.slowlogOps", counters_.slowlogOps);
        reg.set("server.watchOps", counters_.watchOps);
        reg.set("server.watchLines", counters_.watchLines);
        reg.set("server.snapshots", counters_.snapshots);
        // Legacy name kept alongside the response_cache.* namespace so
        // existing consumers keep working.
        reg.set("server.responseCacheEntries", responseCache_.size());
        reg.set("server.response_cache.entries", responseCache_.size());
        reg.set("server.response_cache.capacity",
                responseCache_.capacity());
        reg.set("server.response_cache.hits", responseCache_.hits());
        reg.set("server.response_cache.misses", responseCache_.misses());
        reg.set("server.response_cache.insertions",
                responseCache_.insertions());
        reg.set("server.response_cache.evictions",
                responseCache_.evictions());
        reg.set("server.inflight", inflight_.size());
    }
    {
        std::lock_guard<std::mutex> lock(systemsMutex_);
        reg.set("server.systems", systems_.size());
    }
    const ExecutorStats ex = executor_.stats();
    reg.set("server.executor.submitted", ex.submitted);
    reg.set("server.executor.executed", ex.executed);
    reg.set("server.executor.stolen", ex.stolen);
    reg.set("server.executor.inline", ex.inline_);
    reg.set("server.executor.pending",
            ex.submitted >= ex.executed ? ex.submitted - ex.executed : 0);
    reg.set("server.executor.workers", executor_.workers());
    reg.set("server.log.lines", Logger::instance().linesWritten());
    reg.set("server.slowlog.worstEntries", slowlog_.worst().size());
    reg.set("server.slowlog.errorEntries", slowlog_.errors().size());
    {
        std::lock_guard<std::mutex> lock(telemetryMutex_);
        if (totalHist_.count() != 0)
            reg.addHistogram("server.latency.total", totalHist_);
        for (size_t p = 0; p < kNumPhases; ++p)
            if (phaseHist_[p].count() != 0)
                reg.addHistogram(
                    std::string("server.phase.") +
                        phase_name(static_cast<Phase>(p)),
                    phaseHist_[p]);
    }
}

std::string
Server::handleStats(const ServerRequest &req)
{
    MetricsRegistry reg;
    collectStats(reg);
    std::ostringstream os;
    reg.writeJson(os);
    return render_ok(req.id, "stats", "", 0, compact_json(os.str()));
}

std::string
Server::handleEvict(const ServerRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        responseCache_.clear();
        ++counters_.evictOps;
    }
    {
        // Dropping the facades drops their in-instance compiled
        // variants and golden artifacts; the next identical request
        // rebuilds from the (possibly also evicted) disk tier or cold.
        std::lock_guard<std::mutex> lock(systemsMutex_);
        systems_.clear();
    }
    slowlog_.clear();
    ArtifactCache &cache = ArtifactCache::instance();
    cache.clearMemory();
    CacheEvictionReport report;
    if (cache.diskEnabled())
        report = evict_cache_to_size(cache.diskDir(), req.evictMaxBytes);
    log_info("server.evict", "evicted",
             {{"maxBytes", req.evictMaxBytes},
              {"evictedEntries", report.evictedEntries},
              {"evictedBytes", report.evictedBytes},
              {"remainingBytes", report.remainingBytes}});

    JsonWriter w;
    w.beginObject();
    w.field("maxBytes", req.evictMaxBytes);
    w.field("scannedEntries", report.scannedEntries);
    w.field("scannedBytes", report.scannedBytes);
    w.field("evictedEntries", report.evictedEntries);
    w.field("evictedBytes", report.evictedBytes);
    w.field("orphanTemps", report.orphanTemps);
    w.field("remainingBytes", report.remainingBytes);
    w.endObject();
    return render_ok(req.id, "evict", "", elapsed_us_since(t0), w.str());
}

std::string
Server::handleSlowlog(const ServerRequest &req)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.slowlogOps;
    }
    JsonWriter w;
    w.beginObject();
    w.field("worstCapacity",
            static_cast<u64>(slowlog_.worstCapacity()));
    w.field("errorCapacity",
            static_cast<u64>(slowlog_.errorCapacity()));
    w.key("worst");
    w.beginArray();
    for (const RequestTimeline &t : slowlog_.worst())
        t.writeJson(w);
    w.endArray();
    w.key("errors");
    w.beginArray();
    for (const RequestTimeline &t : slowlog_.errors())
        t.writeJson(w);
    w.endArray();
    w.endObject();
    return render_ok(req.id, "slowlog", "", 0, w.str());
}

StatsSnapshot
Server::sampleStatsNow()
{
    MetricsRegistry reg;
    collectStats(reg);

    StatsSnapshot snap;
    snap.tUs = elapsed_us_since(epoch_);
    snap.wallUs = wall_us_now();
    snap.totals = reg.counters();
    {
        std::lock_guard<std::mutex> lock(snapMutex_);
        snap.seq = ++snapSeq_;
        if (snap.seq > 1) {
            snap.intervalUs =
                snap.tUs >= prevTUs_ ? snap.tUs - prevTUs_ : 0;
            for (const auto &[name, value] : snap.totals) {
                auto it = prevTotals_.find(name);
                const u64 prev =
                    it == prevTotals_.end() ? 0 : it->second;
                // Saturating: registered histogram gauges (p50 etc.)
                // can legitimately move down.
                snap.deltas[name] = value >= prev ? value - prev : 0;
            }
        }
        prevTotals_ = snap.totals;
        prevTUs_ = snap.tUs;
        snapRing_.push_back(snap);
        while (snapRing_.size() > kStatsRingCapacity)
            snapRing_.pop_front();
    }
    snapCv_.notify_all();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.snapshots;
    }
    return snap;
}

std::string
Server::renderSnapshot(const std::string &id, const StatsSnapshot &snap)
{
    JsonWriter w;
    w.beginObject();
    w.field("seq", snap.seq);
    w.field("tUs", snap.tUs);
    w.field("wallUs", snap.wallUs);
    w.field("intervalUs", snap.intervalUs);
    w.key("totals");
    w.beginObject();
    for (const auto &[name, value] : snap.totals)
        w.field(name, value);
    w.endObject();
    // Deltas are sparse: a counter that did not move since the last
    // sample is omitted, which keeps idle snapshots short.
    w.key("deltas");
    w.beginObject();
    for (const auto &[name, value] : snap.deltas)
        if (value != 0)
            w.field(name, value);
    w.endObject();
    w.endObject();
    return render_ok(id, "watch", "", 0, w.str());
}

std::string
Server::handleWatch(const ServerRequest &req, const LineSink &sink)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.watchOps;
    }
    // Without a sink there is nowhere to stream intermediate lines, so
    // the op degrades to one immediate snapshot.
    const u64 count = sink ? req.watchCount : 1;
    u64 lastSeq = 0;
    for (u64 i = 0; i < count; ++i) {
        StatsSnapshot snap;
        bool have = false;
        if (i == 0) {
            // First snapshot is always fresh, so a one-shot watch (and
            // the CI round-trip) never waits out a sampling tick.
            snap = sampleStatsNow();
            have = true;
        } else {
            std::unique_lock<std::mutex> lock(snapMutex_);
            snapCv_.wait_for(
                lock,
                std::chrono::milliseconds(config_.statsIntervalMs + 250),
                [&] {
                    return stopRequested_.load() || snapSeq_ > lastSeq;
                });
            if (stopRequested_.load())
                return render_ok(req.id, "watch", "", 0, "");
            if (snapSeq_ > lastSeq && !snapRing_.empty()) {
                snap = snapRing_.back();
                have = true;
            }
        }
        if (!have) {
            // No background snapshotter (statsIntervalMs == 0, or it
            // fell behind): take our own sample rather than stall.
            snap = sampleStatsNow();
        }
        lastSeq = snap.seq;
        const std::string rendered = renderSnapshot(req.id, snap);
        if (i + 1 == count)
            return rendered;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.watchLines;
        }
        if (!sink(rendered))
            return rendered; // client went away; upstream send fails too
    }
    return render_ok(req.id, "watch", "", 0, "");
}

std::shared_ptr<Server::SystemSlot>
Server::slotFor(u64 identity)
{
    std::lock_guard<std::mutex> lock(systemsMutex_);
    std::shared_ptr<SystemSlot> &slot = systems_[identity];
    if (!slot)
        slot = std::make_shared<SystemSlot>();
    return slot;
}

bool
Server::computeRun(const ServerRequest &req, TimelineRecorder &rec,
                   std::string &body, std::string &error)
{
    // Route the core layers' phase marks (cache probe, golden run,
    // compile, simulate) to this request's recorder for the duration
    // of the compute; the probe is thread-local, so concurrent leaders
    // on other workers are unaffected.
    ScopedPhaseProbe probe(&rec);
    rec.mark(Phase::Parse); // program construction is parsing work

    // One facade per program identity, built at most once; concurrent
    // requests for different options on the same program share it (its
    // own locks make compile/run thread-safe).
    std::shared_ptr<SystemSlot> slot = slotFor(req.programIdentityHash());
    VoltronSystem *sys = nullptr;
    {
        std::lock_guard<std::mutex> lock(slot->m);
        if (!slot->sys && slot->buildError.empty()) {
            Program prog;
            std::string err;
            if (!build_request_program(req, prog, err))
                slot->buildError = err;
            else
                slot->sys =
                    std::make_unique<VoltronSystem>(std::move(prog));
        }
        if (!slot->buildError.empty()) {
            error = slot->buildError;
            return false;
        }
        sys = slot->sys.get();
    }

    MachineConfig config =
        req.options.meshRows != 0
            ? MachineConfig::forMesh(req.options.meshRows,
                                     req.options.meshCols)
            : MachineConfig::forCores(req.options.numCores);
    std::unique_ptr<RingBufferTraceSink> sink;
    if (req.trace) {
        sink = std::make_unique<RingBufferTraceSink>();
        config.traceSink = sink.get();
    }
    MetricsRegistry metrics;
    RunOutcome outcome =
        sys->run(req.options, config, req.metrics ? &metrics : nullptr);
    const double speedup = sys->speedup(outcome);

    rec.mark(Phase::Serialize);
    std::string trace_path;
    if (req.trace) {
        std::error_code ec;
        std::filesystem::create_directories(config_.traceDir, ec);
        trace_path = config_.traceDir + "/trace-" +
                     hex_u64(req.contentHash()).substr(2) + ".vtrace";
        TraceHeader header;
        header.numCores = req.options.numCores;
        header.totalCycles = outcome.result.cycles;
        header.totalEvents = sink->total();
        header.dropped = sink->dropped();
        header.label = strategy_name(req.options.strategy);
        if (!write_trace(trace_path, header, sink->events())) {
            error = "failed to write trace file " + trace_path;
            return false;
        }
        log_debug("server.trace", "wrote trace",
                  {{"path", trace_path}, {"events", sink->total()}});
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceFiles;
    }

    JsonWriter w;
    w.beginObject();
    w.field("contentHash", hex_u64(req.contentHash()));
    w.field("programHash", hex_u64(sys->programHash()));
    w.field("strategy", strategy_name(req.options.strategy));
    w.field("cores", static_cast<u64>(req.options.numCores));
    w.field("correct", outcome.correct());
    w.field("exitValue", outcome.result.exitValue);
    w.field("cycles", outcome.result.cycles);
    w.field("dynamicOps", outcome.result.dynamicOps);
    w.field("speedup", speedup);
    if (!trace_path.empty())
        w.field("trace", trace_path);
    if (req.metrics) {
        std::ostringstream os;
        metrics.writeJson(os);
        w.key("metrics");
        w.raw(compact_json(os.str()));
    }
    w.endObject();
    body = w.str();
    return true;
}

std::string
Server::handleRun(const ServerRequest &req, TimelineRecorder &rec)
{
    const auto t0 = std::chrono::steady_clock::now();
    const u64 key = req.contentHash();
    rec.mark(Phase::Classify);

    std::shared_ptr<Inflight> waitOn;
    std::shared_ptr<Inflight> mine;
    std::string cachedBody;
    bool cachedHit = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const std::string *hit = responseCache_.get(key)) {
            ++counters_.responseHits;
            cachedBody = *hit;
            cachedHit = true;
        } else {
            auto inf = inflight_.find(key);
            if (inf != inflight_.end()) {
                waitOn = inf->second;
                ++counters_.followerHits;
            } else {
                mine = std::make_shared<Inflight>();
                inflight_.emplace(key, mine);
                ++counters_.runs;
            }
        }
    }

    if (cachedHit) {
        rec.meta().source = "cached";
        rec.mark(Phase::Serialize);
        return render_ok(req.id, "run", "cached", elapsed_us_since(t0),
                         cachedBody, timing_json(req, rec));
    }

    if (waitOn) {
        rec.meta().source = "follower";
        rec.mark(Phase::QueueWait); // waiting out the leader's compute
        std::unique_lock<std::mutex> lock(waitOn->m);
        waitOn->cv.wait(lock, [&] { return waitOn->done; });
        if (waitOn->failed) {
            bumpError();
            rec.meta().error = true;
            rec.meta().errorMessage = waitOn->error;
            rec.mark(Phase::Serialize);
            return render_error(req.id, waitOn->error);
        }
        rec.mark(Phase::Serialize);
        return render_ok(req.id, "run", "follower", elapsed_us_since(t0),
                         waitOn->body, timing_json(req, rec));
    }

    // Leader: compute on the executor (the connection thread blocks —
    // the pool bounds how many simulations run at once). The queue-wait
    // span ends when computeRun's first mark lands on the worker.
    rec.meta().source = "cold";
    rec.mark(Phase::QueueWait);
    std::string body;
    std::string error;
    bool ok = false;
    std::promise<void> finished;
    executor_.submit([&] {
        // A request that trips a compiler/simulator panic must come
        // back as an error response, not take the daemon down.
        try {
            ok = computeRun(req, rec, body, error);
        } catch (const std::exception &e) {
            ok = false;
            error = e.what();
        }
        finished.set_value();
    });
    finished.get_future().wait();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (ok)
            responseCache_.put(key, body);
        inflight_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lock(mine->m);
        mine->done = true;
        mine->failed = !ok;
        mine->body = body;
        mine->error = error;
    }
    mine->cv.notify_all();

    if (!ok) {
        bumpError();
        rec.meta().error = true;
        rec.meta().errorMessage = error;
        rec.mark(Phase::Serialize);
        return render_error(req.id, error);
    }
    rec.mark(Phase::Serialize); // no-op: computeRun already marked it
    return render_ok(req.id, "run", "cold", elapsed_us_since(t0), body,
                     timing_json(req, rec));
}

void
Server::finishRequest(TimelineRecorder &rec)
{
    const RequestTimeline t = rec.finish();
    if (t.op == "run") {
        std::lock_guard<std::mutex> lock(telemetryMutex_);
        totalHist_.record(t.totalUs);
        // A phase's histogram counts requests that entered it, so a
        // cached hit (which never compiles) does not drag compile's
        // percentiles toward zero.
        std::array<bool, kNumPhases> seen{};
        for (const PhaseSpan &s : t.spans)
            seen[static_cast<size_t>(s.phase)] = true;
        const std::array<u64, kNumPhases> us = t.phaseUs();
        for (size_t p = 0; p < kNumPhases; ++p)
            if (seen[p])
                phaseHist_[p].record(us[p]);
    }
    if (t.op == "run" || t.error)
        slowlog_.record(t);
    if (t.error)
        log_warn("server.request", "failed",
                 {{"req", t.requestId},
                  {"op", t.op},
                  {"error", t.errorMessage},
                  {"totalUs", t.totalUs}});
    else
        log_debug("server.request", "done",
                  {{"req", t.requestId},
                   {"op", t.op},
                   {"source", t.source},
                   {"totalUs", t.totalUs}});
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down
        }
        log_debug("server.conn", "accepted", {{"fd", fd}});
        std::lock_guard<std::mutex> lock(connMutex_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
Server::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            const std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;
            // The recorder spans from the line coming off the wire to
            // the last response byte hitting the socket, so the reply
            // span includes the actual send.
            TimelineRecorder rec(epoch_, Phase::Accept);
            const LineSink sink = [fd](const std::string &l) {
                return send_all(fd, l + "\n");
            };
            std::string response = dispatchLine(line, rec, sink);
            rec.mark(Phase::Reply);
            response.push_back('\n');
            open = send_all(fd, response);
            finishRequest(rec);
            if (!open)
                break;
        }
    }
    log_debug("server.conn", "closed", {{"fd", fd}});
    // Deregister-and-close atomically so stop() never shuts down a
    // reused descriptor.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] == fd) {
            connFds_.erase(connFds_.begin() + static_cast<long>(i));
            break;
        }
    }
    ::close(fd);
}

void
Server::sweepLoop()
{
    std::unique_lock<std::mutex> lock(lifecycleMutex_);
    while (!stopping_) {
        lifecycleCv_.wait_for(
            lock, std::chrono::milliseconds(config_.evictIntervalMs));
        if (stopping_)
            return;
        lock.unlock();
        ArtifactCache &cache = ArtifactCache::instance();
        if (cache.diskEnabled() && cache.diskBudget() != 0) {
            cache.enforceBudget();
            log_debug("server.sweep", "budget sweep", {});
            std::lock_guard<std::mutex> statsLock(mutex_);
            ++counters_.sweeps;
        }
        lock.lock();
    }
}

void
Server::statsLoop()
{
    std::unique_lock<std::mutex> lock(lifecycleMutex_);
    while (!stopping_) {
        lifecycleCv_.wait_for(
            lock, std::chrono::milliseconds(config_.statsIntervalMs));
        if (stopping_)
            return;
        lock.unlock();
        sampleStatsNow();
        lock.lock();
    }
}

} // namespace voltron
