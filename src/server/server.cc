#include "server/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <sstream>

#include "core/artifact_cache.hh"
#include "core/voltron.hh"
#include "fuzz/generator.hh"
#include "ir/serialize.hh"
#include "ir/verifier.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace voltron {

namespace {

std::string
hex_u64(u64 v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
render_error(const std::string &id, const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    if (!id.empty())
        w.field("id", id);
    w.field("status", "error");
    w.field("error", message);
    w.endObject();
    return w.str();
}

std::string
render_ok(const std::string &id, const std::string &op,
          const std::string &source, u64 elapsed_us,
          const std::string &result_object)
{
    JsonWriter w;
    w.beginObject();
    if (!id.empty())
        w.field("id", id);
    w.field("status", "ok");
    w.field("op", op);
    if (!source.empty())
        w.field("source", source);
    w.field("elapsedUs", elapsed_us);
    if (!result_object.empty()) {
        w.key("result");
        w.raw(result_object);
    }
    w.endObject();
    return w.str();
}

/**
 * MetricsRegistry::writeJson pretty-prints with newlines; the wire
 * protocol is one line per message, so embedded registries must be
 * flattened. Counter names and values never contain whitespace, so
 * stripping newlines and their indent is safe.
 */
std::string
compact_json(const std::string &pretty)
{
    std::string out;
    out.reserve(pretty.size());
    size_t i = 0;
    while (i < pretty.size()) {
        const char c = pretty[i];
        if (c == '\n' || c == '\r') {
            ++i;
            while (i < pretty.size() && pretty[i] == ' ')
                ++i;
            continue;
        }
        out.push_back(c);
        ++i;
    }
    return out;
}

u64
elapsed_us_since(std::chrono::steady_clock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** Build the program a run request describes; false with a message on
 * a source that cannot produce one. */
bool
build_request_program(const ServerRequest &req, Program &out,
                      std::string &err)
{
    switch (req.source) {
    case ProgramSource::Benchmark: {
        const std::vector<std::string> &names = benchmark_names();
        bool known = false;
        for (const std::string &n : names)
            known = known || n == req.benchmark;
        if (!known) {
            err = "unknown benchmark '" + req.benchmark + "'";
            return false;
        }
        SuiteScale scale;
        if (req.targetOps != 0)
            scale.targetOps = req.targetOps;
        out = build_benchmark(req.benchmark, scale);
        return true;
    }
    case ProgramSource::Seed:
        out = generate_fuzz_program(req.seed);
        return true;
    case ProgramSource::ProgramHex: {
        std::vector<u8> bytes;
        if (!hex_decode(req.programHex, bytes)) {
            err = "program is not valid hex";
            return false;
        }
        ByteReader r(bytes);
        Program prog;
        if (!deserialize(r, prog) || !r.atEnd()) {
            err = "program bytes do not deserialize";
            return false;
        }
        VerifyResult vr = verify_program(prog);
        if (!vr.ok()) {
            err = "program fails verification: " + vr.joined();
            return false;
        }
        out = std::move(prog);
        return true;
    }
    case ProgramSource::None:
        break;
    }
    err = "run request has no program source";
    return false;
}

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), executor_(config_.workers)
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    if (config_.cacheMaxBytes != 0)
        ArtifactCache::instance().setDiskBudget(config_.cacheMaxBytes);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.empty() ||
        config_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path empty or too long";
        return false;
    }
    std::memcpy(addr.sun_path, config_.socketPath.c_str(),
                config_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (err)
            *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    acceptThread_ = std::thread([this] { acceptLoop(); });
    sweepThread_ = std::thread([this] { sweepLoop(); });
    return true;
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(lifecycleMutex_);
    lifecycleCv_.wait(lock, [&] { return stopping_; });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMutex_);
        stopping_ = true;
    }
    lifecycleCv_.notify_all();

    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(config_.socketPath.c_str());
    }

    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        conns.swap(connThreads_);
    }
    // Join without connMutex_ held: an exiting connection thread takes
    // it to deregister its fd.
    for (std::thread &t : conns)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::close(fd);
        connFds_.clear();
    }

    if (sweepThread_.joinable())
        sweepThread_.join();
    executor_.stop();
}

ServerCounters
Server::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
Server::bumpError()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
}

std::string
Server::handleLine(const std::string &line)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.requests;
    }
    ServerRequest req;
    std::string err;
    if (!ServerRequest::parse(line, req, &err)) {
        bumpError();
        return render_error("", err);
    }
    if (req.op == "run")
        return handleRun(req);
    if (req.op == "ping")
        return handlePing(req);
    if (req.op == "stats")
        return handleStats(req);
    if (req.op == "evict")
        return handleEvict(req);

    // shutdown: acknowledge, then let wait() return so the daemon's
    // main thread tears everything down (a connection thread cannot
    // join itself).
    {
        std::lock_guard<std::mutex> lock(lifecycleMutex_);
        stopping_ = true;
    }
    lifecycleCv_.notify_all();
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    return render_ok(req.id, "shutdown", "", 0, "");
}

std::string
Server::handlePing(const ServerRequest &req)
{
    JsonWriter w;
    w.beginObject();
    w.field("workers", static_cast<u64>(executor_.workers()));
    w.field("socket", config_.socketPath);
    w.endObject();
    return render_ok(req.id, "ping", "", 0, w.str());
}

std::string
Server::handleStats(const ServerRequest &req)
{
    MetricsRegistry reg;
    collect_cache_metrics(reg);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        reg.set("server.requests", counters_.requests);
        reg.set("server.runs", counters_.runs);
        reg.set("server.responseHits", counters_.responseHits);
        reg.set("server.followerHits", counters_.followerHits);
        reg.set("server.errors", counters_.errors);
        reg.set("server.evictOps", counters_.evictOps);
        reg.set("server.sweeps", counters_.sweeps);
        reg.set("server.traceFiles", counters_.traceFiles);
        reg.set("server.responseCacheEntries", responseCache_.size());
        reg.set("server.inflight", inflight_.size());
    }
    {
        std::lock_guard<std::mutex> lock(systemsMutex_);
        reg.set("server.systems", systems_.size());
    }
    const ExecutorStats ex = executor_.stats();
    reg.set("server.executor.submitted", ex.submitted);
    reg.set("server.executor.executed", ex.executed);
    reg.set("server.executor.stolen", ex.stolen);
    reg.set("server.executor.inline", ex.inline_);
    reg.set("server.executor.workers", executor_.workers());

    std::ostringstream os;
    reg.writeJson(os);
    return render_ok(req.id, "stats", "", 0, compact_json(os.str()));
}

std::string
Server::handleEvict(const ServerRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        responseCache_.clear();
        ++counters_.evictOps;
    }
    {
        // Dropping the facades drops their in-instance compiled
        // variants and golden artifacts; the next identical request
        // rebuilds from the (possibly also evicted) disk tier or cold.
        std::lock_guard<std::mutex> lock(systemsMutex_);
        systems_.clear();
    }
    ArtifactCache &cache = ArtifactCache::instance();
    cache.clearMemory();
    CacheEvictionReport report;
    if (cache.diskEnabled())
        report = evict_cache_to_size(cache.diskDir(), req.evictMaxBytes);

    JsonWriter w;
    w.beginObject();
    w.field("maxBytes", req.evictMaxBytes);
    w.field("scannedEntries", report.scannedEntries);
    w.field("scannedBytes", report.scannedBytes);
    w.field("evictedEntries", report.evictedEntries);
    w.field("evictedBytes", report.evictedBytes);
    w.field("orphanTemps", report.orphanTemps);
    w.field("remainingBytes", report.remainingBytes);
    w.endObject();
    return render_ok(req.id, "evict", "", elapsed_us_since(t0), w.str());
}

std::shared_ptr<Server::SystemSlot>
Server::slotFor(u64 identity)
{
    std::lock_guard<std::mutex> lock(systemsMutex_);
    std::shared_ptr<SystemSlot> &slot = systems_[identity];
    if (!slot)
        slot = std::make_shared<SystemSlot>();
    return slot;
}

bool
Server::computeRun(const ServerRequest &req, std::string &body,
                   std::string &error)
{
    // One facade per program identity, built at most once; concurrent
    // requests for different options on the same program share it (its
    // own locks make compile/run thread-safe).
    std::shared_ptr<SystemSlot> slot = slotFor(req.programIdentityHash());
    VoltronSystem *sys = nullptr;
    {
        std::lock_guard<std::mutex> lock(slot->m);
        if (!slot->sys && slot->buildError.empty()) {
            Program prog;
            std::string err;
            if (!build_request_program(req, prog, err))
                slot->buildError = err;
            else
                slot->sys =
                    std::make_unique<VoltronSystem>(std::move(prog));
        }
        if (!slot->buildError.empty()) {
            error = slot->buildError;
            return false;
        }
        sys = slot->sys.get();
    }

    MachineConfig config =
        req.options.meshRows != 0
            ? MachineConfig::forMesh(req.options.meshRows,
                                     req.options.meshCols)
            : MachineConfig::forCores(req.options.numCores);
    std::unique_ptr<RingBufferTraceSink> sink;
    if (req.trace) {
        sink = std::make_unique<RingBufferTraceSink>();
        config.traceSink = sink.get();
    }
    MetricsRegistry metrics;
    RunOutcome outcome =
        sys->run(req.options, config, req.metrics ? &metrics : nullptr);
    const double speedup = sys->speedup(outcome);

    std::string trace_path;
    if (req.trace) {
        std::error_code ec;
        std::filesystem::create_directories(config_.traceDir, ec);
        trace_path = config_.traceDir + "/trace-" +
                     hex_u64(req.contentHash()).substr(2) + ".vtrace";
        TraceHeader header;
        header.numCores = req.options.numCores;
        header.totalCycles = outcome.result.cycles;
        header.totalEvents = sink->total();
        header.dropped = sink->dropped();
        header.label = strategy_name(req.options.strategy);
        if (!write_trace(trace_path, header, sink->events())) {
            error = "failed to write trace file " + trace_path;
            return false;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.traceFiles;
    }

    JsonWriter w;
    w.beginObject();
    w.field("contentHash", hex_u64(req.contentHash()));
    w.field("programHash", hex_u64(sys->programHash()));
    w.field("strategy", strategy_name(req.options.strategy));
    w.field("cores", static_cast<u64>(req.options.numCores));
    w.field("correct", outcome.correct());
    w.field("exitValue", outcome.result.exitValue);
    w.field("cycles", outcome.result.cycles);
    w.field("dynamicOps", outcome.result.dynamicOps);
    w.field("speedup", speedup);
    if (!trace_path.empty())
        w.field("trace", trace_path);
    if (req.metrics) {
        std::ostringstream os;
        metrics.writeJson(os);
        w.key("metrics");
        w.raw(compact_json(os.str()));
    }
    w.endObject();
    body = w.str();
    return true;
}

std::string
Server::handleRun(const ServerRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    const u64 key = req.contentHash();

    std::shared_ptr<Inflight> waitOn;
    std::shared_ptr<Inflight> mine;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto hit = responseCache_.find(key);
        if (hit != responseCache_.end()) {
            ++counters_.responseHits;
            return render_ok(req.id, "run", "cached",
                             elapsed_us_since(t0), hit->second);
        }
        auto inf = inflight_.find(key);
        if (inf != inflight_.end()) {
            waitOn = inf->second;
            ++counters_.followerHits;
        } else {
            mine = std::make_shared<Inflight>();
            inflight_.emplace(key, mine);
            ++counters_.runs;
        }
    }

    if (waitOn) {
        std::unique_lock<std::mutex> lock(waitOn->m);
        waitOn->cv.wait(lock, [&] { return waitOn->done; });
        if (waitOn->failed) {
            bumpError();
            return render_error(req.id, waitOn->error);
        }
        return render_ok(req.id, "run", "follower", elapsed_us_since(t0),
                         waitOn->body);
    }

    // Leader: compute on the executor (the connection thread blocks —
    // the pool bounds how many simulations run at once).
    std::string body;
    std::string error;
    bool ok = false;
    std::promise<void> finished;
    executor_.submit([&] {
        // A request that trips a compiler/simulator panic must come
        // back as an error response, not take the daemon down.
        try {
            ok = computeRun(req, body, error);
        } catch (const std::exception &e) {
            ok = false;
            error = e.what();
        }
        finished.set_value();
    });
    finished.get_future().wait();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (ok)
            responseCache_[key] = body;
        inflight_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lock(mine->m);
        mine->done = true;
        mine->failed = !ok;
        mine->body = body;
        mine->error = error;
    }
    mine->cv.notify_all();

    if (!ok) {
        bumpError();
        return render_error(req.id, error);
    }
    return render_ok(req.id, "run", "cold", elapsed_us_since(t0), body);
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
Server::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            const std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;
            std::string response = handleLine(line);
            response.push_back('\n');
            size_t sent = 0;
            while (sent < response.size()) {
                // MSG_NOSIGNAL: a vanished client is a closed
                // connection, not a fatal SIGPIPE.
                const ssize_t w =
                    ::send(fd, response.data() + sent,
                           response.size() - sent, MSG_NOSIGNAL);
                if (w <= 0) {
                    open = false;
                    break;
                }
                sent += static_cast<size_t>(w);
            }
            if (!open)
                break;
        }
    }
    // Deregister-and-close atomically so stop() never shuts down a
    // reused descriptor.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] == fd) {
            connFds_.erase(connFds_.begin() + static_cast<long>(i));
            break;
        }
    }
    ::close(fd);
}

void
Server::sweepLoop()
{
    std::unique_lock<std::mutex> lock(lifecycleMutex_);
    while (!stopping_) {
        lifecycleCv_.wait_for(
            lock, std::chrono::milliseconds(config_.evictIntervalMs));
        if (stopping_)
            return;
        lock.unlock();
        ArtifactCache &cache = ArtifactCache::instance();
        if (cache.diskEnabled() && cache.diskBudget() != 0) {
            cache.enforceBudget();
            std::lock_guard<std::mutex> statsLock(mutex_);
            ++counters_.sweeps;
        }
        lock.lock();
    }
}

} // namespace voltron
