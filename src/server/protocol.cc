#include "server/protocol.hh"

#include "core/artifact_cache.hh"
#include "support/serialize.hh"

namespace voltron {

namespace {

int
hex_digit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

bool
fail(std::string *err, const std::string &message)
{
    if (err)
        *err = message;
    return false;
}

} // namespace

std::string
hex_encode(const std::vector<u8> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (u8 b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
hex_decode(const std::string &hex, std::vector<u8> &out)
{
    if (hex.size() % 2 != 0)
        return false;
    out.clear();
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_digit(hex[i]);
        const int lo = hex_digit(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<u8>((hi << 4) | lo));
    }
    return true;
}

bool
parse_strategy(const std::string &name, Strategy &out)
{
    static const Strategy all[] = {
        Strategy::SerialOnly, Strategy::IlpOnly, Strategy::TlpOnly,
        Strategy::LlpOnly,    Strategy::Hybrid,  Strategy::Adaptive,
    };
    for (Strategy s : all) {
        if (name == strategy_name(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
ServerRequest::parse(const std::string &line, ServerRequest &out,
                     std::string *err)
{
    out = ServerRequest{};
    JsonValue root;
    std::string jerr;
    if (!JsonValue::parse(line, root, &jerr))
        return fail(err, "bad json: " + jerr);
    if (!root.isObject())
        return fail(err, "request must be a json object");

    out.op = root.str("op");
    out.id = root.str("id");
    if (out.op != "run" && out.op != "ping" && out.op != "stats" &&
        out.op != "evict" && out.op != "shutdown" &&
        out.op != "slowlog" && out.op != "watch")
        return fail(err, "unknown op '" + out.op + "'");

    if (out.op == "evict")
        out.evictMaxBytes = root.u64At("maxBytes", 0);
    if (out.op == "watch") {
        out.watchCount = root.u64At("count", 1);
        if (out.watchCount == 0)
            return fail(err, "watch count must be >= 1");
    }
    if (out.op != "run")
        return true;

    int sources = 0;
    if (const JsonValue *v = root.find("benchmark"); v && v->isString()) {
        out.source = ProgramSource::Benchmark;
        out.benchmark = v->text();
        out.targetOps = root.u64At("targetOps", 0);
        ++sources;
    }
    if (const JsonValue *v = root.find("seed"); v && v->isNumber()) {
        out.source = ProgramSource::Seed;
        out.seed = v->asU64();
        ++sources;
    }
    if (const JsonValue *v = root.find("program"); v && v->isString()) {
        out.source = ProgramSource::ProgramHex;
        out.programHex = v->text();
        ++sources;
    }
    if (sources == 0)
        return fail(err, "run needs one of benchmark/seed/program");
    if (sources > 1)
        return fail(err, "run sources are mutually exclusive");
    if (out.source == ProgramSource::ProgramHex) {
        std::vector<u8> bytes;
        if (!hex_decode(out.programHex, bytes))
            return fail(err, "program is not valid hex");
    }

    if (const JsonValue *opts = root.find("options")) {
        if (!opts->isObject())
            return fail(err, "options must be an object");
        const std::string strat = opts->str("strategy", "hybrid");
        if (!parse_strategy(strat, out.options.strategy))
            return fail(err, "unknown strategy '" + strat + "'");
        out.options.numCores = static_cast<u16>(
            opts->u64At("cores", out.options.numCores));
        out.options.meshRows =
            static_cast<u16>(opts->u64At("meshRows", 0));
        out.options.meshCols =
            static_cast<u16>(opts->u64At("meshCols", 0));
        out.options.minOpsPerActivation = opts->u64At(
            "minOpsPerActivation", out.options.minOpsPerActivation);
        out.options.minDoallTrip =
            opts->f64At("minDoallTrip", out.options.minDoallTrip);
    }
    if (out.options.numCores == 0)
        return fail(err, "cores must be >= 1");
    if ((out.options.meshRows == 0) != (out.options.meshCols == 0))
        return fail(err, "meshRows and meshCols come together");
    if (out.options.meshRows != 0 &&
        static_cast<u32>(out.options.meshRows) * out.options.meshCols !=
            out.options.numCores)
        return fail(err, "mesh shape must cover exactly numCores");

    out.trace = root.boolAt("trace", false);
    out.metrics = root.boolAt("metrics", false);
    // Like metrics, timing shapes only the response envelope, never the
    // computed result — it is deliberately absent from contentHash() so
    // a timed request still dedups against an untimed one.
    out.timing = root.boolAt("timing", false);
    return true;
}

u64
ServerRequest::programIdentityHash() const
{
    // The generators are deterministic, so the descriptor is as good an
    // identity as the serialized program — and available before any IR
    // is built, which is what lets followers dedup against a leader
    // that has not finished constructing the program yet.
    ByteWriter w;
    w.u8v(static_cast<u8>(source));
    switch (source) {
    case ProgramSource::Benchmark:
        w.str(benchmark);
        w.u64v(targetOps);
        break;
    case ProgramSource::Seed:
        w.u64v(seed);
        break;
    case ProgramSource::ProgramHex: {
        std::vector<u8> bytes;
        hex_decode(programHex, bytes);
        w.u64v(fnv1a(bytes));
        break;
    }
    case ProgramSource::None:
        break;
    }
    return fnv1a(w.bytes());
}

u64
ServerRequest::contentHash() const
{
    u64 h = programIdentityHash();
    h = hash_combine(h, options_hash(options));
    h = hash_combine(h, trace ? 1 : 0);
    return h;
}

} // namespace voltron
