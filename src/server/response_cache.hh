/**
 * @file
 * ResponseCache — the daemon's bounded replay cache of rendered run
 * responses.
 *
 * PR 9 left this as an unbounded unordered_map: correct, but a daemon
 * fed an endless stream of distinct requests (the fuzz sweep, a
 * parameter scan) grows without limit. This is the LRU-bounded
 * replacement: at most @p capacity entries, get() refreshes recency,
 * put() evicts the least-recently-used entry when full. An evicted
 * response is not an error path — the next identical request is simply
 * a cold miss that re-derives the same body from the (still-warm)
 * artifact cache, which the eviction test pins.
 *
 * NOT internally synchronized: the server already serializes all dedup
 * state under one mutex, and a second lock here would only add a
 * deadlock surface.
 */

#ifndef VOLTRON_SERVER_RESPONSE_CACHE_HH_
#define VOLTRON_SERVER_RESPONSE_CACHE_HH_

#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "support/types.hh"

namespace voltron {

class ResponseCache
{
  public:
    explicit ResponseCache(size_t capacity) : capacity_(capacity) {}

    /** Body for @p key, or nullptr. A hit refreshes recency. The
     * pointer is valid until the next put()/clear(). */
    const std::string *
    get(u64 key)
    {
        auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        entries_.splice(entries_.begin(), entries_, it->second);
        return &it->second->second;
    }

    /** Insert (or refresh) @p key; evicts the LRU entry when full. */
    void
    put(u64 key, std::string body)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(body);
            entries_.splice(entries_.begin(), entries_, it->second);
            return;
        }
        if (capacity_ != 0 && entries_.size() >= capacity_) {
            index_.erase(entries_.back().first);
            entries_.pop_back();
            ++evictions_;
        }
        entries_.emplace_front(key, std::move(body));
        index_[key] = entries_.begin();
        ++insertions_;
    }

    void
    clear()
    {
        entries_.clear();
        index_.clear();
    }

    size_t size() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 insertions() const { return insertions_; }
    u64 evictions() const { return evictions_; }

  private:
    const size_t capacity_; //!< 0 = unbounded (tests only)
    std::list<std::pair<u64, std::string>> entries_; //!< MRU at front
    std::unordered_map<u64,
                       std::list<std::pair<u64, std::string>>::iterator>
        index_;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 insertions_ = 0;
    u64 evictions_ = 0;
};

} // namespace voltron

#endif // VOLTRON_SERVER_RESPONSE_CACHE_HH_
