/**
 * @file
 * Work-stealing thread-pool executor for server requests.
 *
 * Each worker owns a deque: it pushes and pops its own work at the back
 * (LIFO — the task it just unblocked is cache-hot) and steals from
 * other workers' fronts (FIFO — the oldest, likely largest, stranded
 * work first), the classic Chase–Lev discipline in mutex-per-deque
 * form. External submitters distribute round-robin, so a burst of
 * requests fans out even before anyone steals; a worker that drains
 * its own deque scans the others before sleeping on the shared
 * condition variable.
 *
 * Tasks are plain std::function<void()>; request handlers wrap their
 * result delivery in a promise. The executor never rejects work:
 * submit after stop() runs the task inline on the submitter, so
 * shutdown cannot strand a waiting connection.
 */

#ifndef VOLTRON_SERVER_EXECUTOR_HH_
#define VOLTRON_SERVER_EXECUTOR_HH_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/types.hh"

namespace voltron {

/** Counters for the stats endpoint (monotonic over the pool's life). */
struct ExecutorStats
{
    u64 submitted = 0; //!< tasks accepted
    u64 executed = 0;  //!< tasks completed
    u64 stolen = 0;    //!< tasks a worker took from another's deque
    u64 inline_ = 0;   //!< tasks run on the submitter (post-stop)
};

class Executor
{
  public:
    explicit Executor(size_t workers);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Enqueue @p task; runs it inline if the pool is stopped. */
    void submit(std::function<void()> task);

    /** Drain: no new tasks queue after this; workers finish what is
     * queued, then exit. Idempotent. */
    void stop();

    size_t workers() const { return queues_.size(); }
    ExecutorStats stats() const;

  private:
    struct Queue
    {
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t self);
    bool takeOwn(size_t self, std::function<void()> &task);
    bool stealOther(size_t self, std::function<void()> &task);

    mutable std::mutex mutex_; //!< guards queues_, stats_, stopping_
    std::condition_variable cv_;
    std::vector<Queue> queues_;
    std::vector<std::thread> threads_;
    ExecutorStats stats_;
    size_t nextQueue_ = 0; //!< round-robin submission cursor
    u64 pending_ = 0;
    bool stopping_ = false;
};

} // namespace voltron

#endif // VOLTRON_SERVER_EXECUTOR_HH_
