#include "server/timeline.hh"

#include "server/json.hh"

namespace voltron {

namespace {

u64
us_between(TimelineRecorder::Clock::time_point a,
           TimelineRecorder::Clock::time_point b)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a)
            .count());
}

} // namespace

std::array<u64, kNumPhases>
RequestTimeline::phaseUs() const
{
    std::array<u64, kNumPhases> totals{};
    for (const PhaseSpan &span : spans)
        totals[static_cast<size_t>(span.phase)] += span.durationUs();
    return totals;
}

void
RequestTimeline::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("requestId", requestId);
    w.field("op", op);
    if (!id.empty())
        w.field("id", id);
    if (!source.empty())
        w.field("source", source);
    if (error)
        w.field("error", errorMessage);
    w.field("startUs", startUs);
    w.field("totalUs", totalUs);
    w.key("phases");
    w.beginObject();
    const std::array<u64, kNumPhases> totals = phaseUs();
    for (size_t p = 0; p < kNumPhases; ++p)
        if (totals[p] != 0 || p == static_cast<size_t>(Phase::Parse))
            w.field(phase_name(static_cast<Phase>(p)), totals[p]);
    w.endObject();
    w.key("spans");
    w.beginArray();
    for (const PhaseSpan &span : spans) {
        w.beginObject();
        w.field("phase", phase_name(span.phase));
        w.field("startUs", span.startUs);
        w.field("endUs", span.endUs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

TimelineRecorder::TimelineRecorder(Clock::time_point epoch, Phase phase)
    : epoch_(epoch), start_(Clock::now()), currentStart_(start_),
      currentPhase_(phase)
{
}

void
TimelineRecorder::mark(Phase phase)
{
    if (finished_ || phase == currentPhase_)
        return;
    const Clock::time_point now = Clock::now();
    closed_.push_back({currentPhase_, us_between(start_, currentStart_),
                       us_between(start_, now)});
    currentStart_ = now;
    currentPhase_ = phase;
}

RequestTimeline
TimelineRecorder::assemble(Clock::time_point end) const
{
    RequestTimeline t = meta_;
    t.startUs = us_between(epoch_, start_);
    t.totalUs = us_between(start_, end);
    t.spans = closed_;
    t.spans.push_back({currentPhase_, us_between(start_, currentStart_),
                       t.totalUs});
    return t;
}

RequestTimeline
TimelineRecorder::finish()
{
    if (!finished_) {
        finished_ = true;
        final_ = assemble(Clock::now());
    }
    return final_;
}

RequestTimeline
TimelineRecorder::snapshot() const
{
    return finished_ ? final_ : assemble(Clock::now());
}

} // namespace voltron
