/**
 * @file
 * RequestTimeline — where one server request's wall time went.
 *
 * A TimelineRecorder is a PhaseProbe (support/phase.hh) bound to one
 * request: created when the request line comes off the wire, marked at
 * every phase transition (by the server's own handlers and, via the
 * thread-local probe, by the artifact cache / golden pass / compiler /
 * simulator deep inside VoltronSystem), and finished after the reply is
 * sent. Because marks are transitions — each one closes the span the
 * previous mark opened — the recorded spans tile the request's total
 * wall time exactly: span[0] starts at 0, span[i+1] starts where
 * span[i] ends, and the last span ends at totalUs. The acceptance test
 * pins this invariant.
 *
 * A request may enter the same phase several times (a cold run probes
 * the cache once for the golden artifact and again for the machine
 * artifact; an adaptive run compiles and simulates repeatedly); the
 * spans keep the full sequence and phaseUs() folds them into per-phase
 * totals for histograms and the response's "timing" object.
 *
 * The recorder crosses threads (connection thread -> executor worker ->
 * connection thread) but never runs on two at once; the executor's
 * promise/future hand-off provides the happens-before edges.
 */

#ifndef VOLTRON_SERVER_TIMELINE_HH_
#define VOLTRON_SERVER_TIMELINE_HH_

#include <array>
#include <chrono>
#include <string>
#include <vector>

#include "support/phase.hh"

namespace voltron {

class JsonWriter;

/** One contiguous stretch of a request spent in one phase. */
struct PhaseSpan
{
    Phase phase;
    u64 startUs; //!< offset from the request's start
    u64 endUs;   //!< offset from the request's start (>= startUs)

    u64 durationUs() const { return endUs - startUs; }
};

/** The finished record of one request's journey. */
struct RequestTimeline
{
    u64 requestId = 0;   //!< daemon-unique, monotonically increasing
    u64 contentHash = 0; //!< dedup key (0 for non-run ops)
    std::string op;
    std::string id;     //!< client correlation tag
    std::string source; //!< cold | cached | follower ("" otherwise)
    bool error = false;
    std::string errorMessage;
    u64 startUs = 0; //!< steady offset from server start
    u64 totalUs = 0;
    std::vector<PhaseSpan> spans;

    /** Total duration per phase (spans folded). */
    std::array<u64, kNumPhases> phaseUs() const;

    /** Render the "timing" object: requestId, totalUs, per-phase sums,
     * and the span sequence. */
    void writeJson(JsonWriter &w) const;
};

/** Phase-transition clock for one request. */
class TimelineRecorder final : public PhaseProbe
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Starts the clock (and the first span) at @p phase, now. The
     * @p epoch is the server's start time so timelines are mutually
     * comparable. */
    TimelineRecorder(Clock::time_point epoch, Phase phase);

    /** Close the current span and open one for @p phase. Re-marking
     * the current phase is a no-op (spans stay maximal). */
    void mark(Phase phase) override;

    /** Close the last span and return the assembled timeline. Further
     * marks are ignored. */
    RequestTimeline finish();

    /**
     * Snapshot the timeline as of now *without* ending recording: the
     * current span is closed at the snapshot instant. Used to embed the
     * "timing" object in the response body while the reply span is
     * still to come.
     */
    RequestTimeline snapshot() const;

    RequestTimeline &meta() { return meta_; }

  private:
    RequestTimeline assemble(Clock::time_point end) const;

    Clock::time_point epoch_;
    Clock::time_point start_;
    Clock::time_point currentStart_;
    Phase currentPhase_;
    bool finished_ = false;
    std::vector<PhaseSpan> closed_;
    RequestTimeline meta_;  //!< id/op/source filled in by handlers
    RequestTimeline final_; //!< cached result once finished
};

} // namespace voltron

#endif // VOLTRON_SERVER_TIMELINE_HH_
