#include "server/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace voltron {

namespace {

void
set_err(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
Client::connect(const std::string &socket_path, std::string *err)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path empty or too long";
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        set_err(err, "socket");
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        set_err(err, "connect");
        close();
        return false;
    }
    return true;
}

bool
Client::request(const std::string &line, std::string &response,
                std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    std::string out = line;
    out.push_back('\n');
    size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t w = ::send(fd_, out.data() + sent, out.size() - sent,
                                 MSG_NOSIGNAL);
        if (w <= 0) {
            set_err(err, "send");
            close();
            return false;
        }
        sent += static_cast<size_t>(w);
    }

    return readLine(response, err);
}

bool
Client::readLine(std::string &response, std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    char chunk[4096];
    for (;;) {
        const size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            response = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n <= 0) {
            set_err(err, "read");
            close();
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace voltron
